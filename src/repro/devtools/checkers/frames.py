"""wire-frames: every frame type is dispatched; no unknown types.

Cross-checks each wire enum against its dispatch sites:

* :class:`repro.service.wire.FrameType` must be referenced (as
  ``FrameType.X``) in ``service/server.py`` or ``service/client.py`` —
  a member nobody dispatches is dead protocol surface (or a handler
  someone forgot to write);
* :class:`repro.cluster.proc.RpcType` likewise within the subprocess
  executor;
* ``FrameType.X`` / ``RpcType.X`` references to members the enum does
  not define fail statically instead of as runtime ``AttributeError``;
* the ``FRAME_LABELS`` accounting table in ``service/wire.py`` must
  cover every frame type (a missing entry is a ``KeyError`` on the
  first frame of that type).

The checker is configured for this repository's layout; when run over
a tree without these files (fixture tests) it simply has nothing to
say.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import ClassVar

from repro.devtools.astutil import enum_members, find_class
from repro.devtools.checkers import Checker
from repro.devtools.findings import Finding
from repro.devtools.source import Project

#: Enum attributes that are machinery, not members.
_ENUM_ATTRS = frozenset({"name", "value", "_missing_", "__members__"})


@dataclass
class EnumSpec:
    """Where one wire enum lives and where its dispatchers are."""

    enum_path: str
    enum_name: str
    dispatch_paths: list[str]
    #: (path, assignment name) of dict tables that must be exhaustive
    tables: list[tuple[str, str]] = field(default_factory=list)


ENUM_SPECS: list[EnumSpec] = [
    EnumSpec(
        enum_path="src/repro/service/wire.py",
        enum_name="FrameType",
        dispatch_paths=[
            "src/repro/service/server.py",
            "src/repro/service/client.py",
        ],
        tables=[("src/repro/service/wire.py", "FRAME_LABELS")],
    ),
    EnumSpec(
        enum_path="src/repro/cluster/proc.py",
        enum_name="RpcType",
        dispatch_paths=["src/repro/cluster/proc.py"],
    ),
]


def _attr_refs(tree: ast.Module, enum_name: str) -> dict[str, int]:
    """``member -> first line`` of every ``EnumName.member`` reference."""
    refs: dict[str, int] = {}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == enum_name
            and node.attr not in _ENUM_ATTRS
        ):
            refs.setdefault(node.attr, node.lineno)
    return refs


def _dict_table(tree: ast.Module, name: str) -> ast.Dict | None:
    for stmt in tree.body:
        target: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
            value = stmt.value
        else:
            continue
        if (
            isinstance(target, ast.Name)
            and target.id == name
            and isinstance(value, ast.Dict)
        ):
            return value
    return None


class WireFrameExhaustiveness(Checker):
    id: ClassVar[str] = "wire-frames"
    description: ClassVar[str] = (
        "frame-type enums cross-checked against dispatch sites: no "
        "orphaned, unhandled, or unknown frame types"
    )
    hint: ClassVar[str] = (
        "handle the frame type at its dispatch sites (and in "
        "FRAME_LABELS), or remove the dead member"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for spec in ENUM_SPECS:
            findings.extend(self._check_spec(project, spec))
        return findings

    def _check_spec(
        self, project: Project, spec: EnumSpec
    ) -> Iterable[Finding]:
        enum_src = project.file(spec.enum_path)
        if enum_src is None or enum_src.tree is None:
            return
        classdef = find_class(enum_src.tree, spec.enum_name)
        if classdef is None:
            yield self.finding(
                enum_src, 1, 0,
                f"expected enum {spec.enum_name} in {spec.enum_path}",
                hint="update ENUM_SPECS in the wire-frames checker",
            )
            return
        members = enum_members(classdef)

        dispatched: set[str] = set()
        for path in spec.dispatch_paths:
            dispatch_src = project.file(path)
            if dispatch_src is None or dispatch_src.tree is None:
                continue
            refs = _attr_refs(dispatch_src.tree, spec.enum_name)
            dispatched.update(refs)
            for member, line in sorted(refs.items()):
                if member not in members:
                    yield self.finding(
                        dispatch_src, line, 0,
                        f"{spec.enum_name}.{member} is not a defined "
                        f"frame type (AttributeError at runtime)",
                        hint=f"define it in {spec.enum_path} or fix the "
                             f"reference",
                    )
        for member, line in sorted(members.items()):
            if member not in dispatched:
                yield self.finding(
                    enum_src, line, 0,
                    f"{spec.enum_name}.{member} is never dispatched in "
                    f"{', '.join(spec.dispatch_paths)}",
                )

        for table_path, table_name in spec.tables:
            table_src = project.file(table_path)
            if table_src is None or table_src.tree is None:
                continue
            table = _dict_table(table_src.tree, table_name)
            if table is None:
                yield self.finding(
                    table_src, 1, 0,
                    f"expected dict table {table_name} in {table_path}",
                    hint="update ENUM_SPECS in the wire-frames checker",
                )
                continue
            covered = {
                key.attr
                for key in table.keys
                if isinstance(key, ast.Attribute)
                and isinstance(key.value, ast.Name)
                and key.value.id == spec.enum_name
            }
            for member in sorted(set(members) - covered):
                yield self.finding(
                    table_src, table.lineno, 0,
                    f"{table_name} does not cover "
                    f"{spec.enum_name}.{member} (KeyError on first use)",
                )
