"""unseeded-rng: all randomness flows through the seeding discipline.

The determinism contract (``repro.utils.seeds``: every workload,
arrival process, and benchmark derives its RNG from an explicit seed)
only holds if nothing reaches for process-global randomness.  Outside
``utils/seeds.py`` and test code this checker flags:

* module-level ``random.<fn>(...)`` calls (``random.random``,
  ``random.randint``, ...) — the shared, unseeded global generator;
* ``random.Random()`` constructed *without* a seed argument;
* ``from random import <fn>`` of anything but the ``Random`` class;
* the bare ``random`` module used as a value (e.g. a default RNG
  object) — the same global generator by another route;
* legacy ``numpy.random.*`` calls except the seedable constructors
  (``default_rng``/``Generator``/``SeedSequence``/``RandomState``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from repro.devtools.astutil import call_name
from repro.devtools.checkers import Checker
from repro.devtools.findings import Finding
from repro.devtools.source import SourceFile

#: numpy.random attributes that construct a seedable generator.
NUMPY_SEEDABLE = frozenset({
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "BitGenerator", "PCG64", "Philox", "MT19937",
})

EXEMPT_SUFFIXES = ("utils/seeds.py",)


class UnseededRng(Checker):
    id: ClassVar[str] = "unseeded-rng"
    description: ClassVar[str] = (
        "process-global random.* / numpy.random.* use outside "
        "utils/seeds.py (breaks the determinism contract)"
    )
    hint: ClassVar[str] = (
        "derive a generator via repro.utils.seeds (derive_seed/"
        "spawn_rng) or accept an injected rng parameter"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if src.tree is None:
            return []
        if any(src.rel.endswith(suffix) for suffix in EXEMPT_SUFFIXES):
            return []
        parts = src.rel.split("/")
        if "tests" in parts or parts[-1].startswith("test_"):
            return []
        findings: list[Finding] = []
        imports_random = src.imports_module("random")
        attr_bases: set[int] = {
            id(node.value)
            for node in ast.walk(src.tree)
            if isinstance(node, ast.Attribute)
        }
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(
                    alias.name for alias in node.names
                    if alias.name not in ("Random", "SystemRandom")
                )
                if bad:
                    findings.append(self.finding(
                        src, node.lineno, node.col_offset,
                        f"from random import {', '.join(bad)} binds the "
                        f"unseeded global generator",
                    ))
            elif isinstance(node, ast.Call):
                finding = self._classify_call(src, node)
                if finding is not None:
                    findings.append(finding)
            elif (
                imports_random
                and isinstance(node, ast.Name)
                and node.id == "random"
                and isinstance(node.ctx, ast.Load)
                and id(node) not in attr_bases
            ):
                findings.append(self.finding(
                    src, node.lineno, node.col_offset,
                    "the random module itself is used as an RNG object "
                    "(the unseeded global generator)",
                ))
        return findings

    def _classify_call(
        self, src: SourceFile, node: ast.Call
    ) -> Finding | None:
        name = call_name(node)
        if name is None:
            return None
        if name == "random.Random":
            if not node.args and not node.keywords:
                return self.finding(
                    src, node.lineno, node.col_offset,
                    "random.Random() constructed without a seed",
                )
            return None
        if name.startswith("random.") and name.count(".") == 1:
            return self.finding(
                src, node.lineno, node.col_offset,
                f"{name}() draws from the unseeded global generator",
            )
        for prefix in ("numpy.random.", "np.random."):
            if name.startswith(prefix):
                attr = name[len(prefix):]
                if attr not in NUMPY_SEEDABLE:
                    return self.finding(
                        src, node.lineno, node.col_offset,
                        f"{name}() uses numpy's legacy global RNG",
                    )
        return None
