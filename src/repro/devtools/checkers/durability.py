"""durable-before-ack: never acknowledge a mutation before it is durable.

The cluster tier's contract (``docs/architecture.md``, "durable before
ack") says a client-visible acknowledgement may only be sent after the
corresponding storage write (``record_create``/``record_diff``, or the
shared :func:`repro.cluster.storage.apply_mutation` path that wraps
them) has returned.  The replication tier (PR-10) adds two more edges
of the same contract: a follower's replication cursor may only be
written after its durable apply/bootstrap (the cursor must never
overstate the applied prefix — elections trust it), and under quorum
mode the primary may only resolve a mutation's future after the quorum
count (``wait_durable``) returns.  This checker walks every function in
``cluster/`` modules: when a function contains both an ack-style send
and a durable write, the first ack must come lexically *after* the
first durable write.  Purely lexical by design — it catches the cheap,
common regression (a reply hoisted above the storage call during a
refactor), not every interleaving a control-flow analysis could prove.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from repro.devtools.astutil import call_name, last_segment, scope_body, scopes
from repro.devtools.checkers import Checker
from repro.devtools.findings import Finding
from repro.devtools.source import SourceFile

#: Callee names (last segment) that make a mutation durable:
#: the storage writes, a follower's durable apply/bootstrap
#: (``restart``), and the primary's quorum count (``wait_durable``).
DURABLE_CALLS = frozenset({
    "record_create", "record_diff", "apply_mutation",
    "apply", "restart", "wait_durable",
})

#: Callee names (last segment) that acknowledge a mutation to a peer:
#: wire replies, a resolved mutation future (``set_result``), and a
#: follower's replication-cursor write (the ack an election trusts).
ACK_CALLS = frozenset({
    "send_frame", "_reply_ok", "reply_ok", "_send",
    "set_result", "write_cursor", "_write_cursor",
})


class DurableBeforeAck(Checker):
    id: ClassVar[str] = "durable-before-ack"
    description: ClassVar[str] = (
        "in cluster/ handlers, an ack send is reachable before the "
        "corresponding record_create/record_diff/apply_mutation"
    )
    hint: ClassVar[str] = (
        "move the ack after the durable write returns; a crash between "
        "ack and write loses acknowledged data"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if src.tree is None or "cluster" not in src.rel.split("/"):
            return []
        findings: list[Finding] = []
        for scope in scopes(src.tree):
            if isinstance(scope, ast.Module):
                continue
            first_ack: ast.Call | None = None
            first_durable: ast.Call | None = None
            for node in scope_body(scope):
                if not isinstance(node, ast.Call):
                    continue
                callee = last_segment(call_name(node))
                if callee in ACK_CALLS:
                    if first_ack is None or node.lineno < first_ack.lineno:
                        first_ack = node
                elif callee in DURABLE_CALLS:
                    if (
                        first_durable is None
                        or node.lineno < first_durable.lineno
                    ):
                        first_durable = node
            if (
                first_ack is not None
                and first_durable is not None
                and first_ack.lineno < first_durable.lineno
            ):
                findings.append(
                    self.finding(
                        src, first_ack.lineno, first_ack.col_offset,
                        f"{scope.name}() sends an ack (line "
                        f"{first_ack.lineno}) before its durable write "
                        f"(line {first_durable.lineno})",
                    )
                )
        return findings
