"""blocking-call-in-async: no synchronous I/O on the event loop.

Flags calls that block the calling thread when they appear lexically
inside an ``async def`` body (nested synchronous ``def``/``lambda``
bodies open a new, non-async context and are exempt):

* ``time.sleep`` and friends (:data:`BLOCKING_CALLS`),
* synchronous file I/O: builtin ``open`` and ``Path.read_text``-style
  method calls,
* sqlite3 work (``connect``/``execute``/``commit``/...) in modules
  that import :mod:`sqlite3` — connections are thread-bound, so these
  run inline and stall every session on the loop,
* in ``cluster/`` modules, the storage-durability methods
  (``record_create``/``record_diff``/``apply_diff``/``create``) whose
  backends may commit to disk inline.

Every shard's durable write that deliberately stays inline (the SQLite
backend's single-transaction commits) must carry a pragma whose
justification explains why the loop may wait on it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import ClassVar

from repro.devtools.astutil import call_name, last_segment
from repro.devtools.checkers import Checker
from repro.devtools.findings import Finding
from repro.devtools.source import SourceFile

#: Fully-dotted callables that always block the calling thread.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "os.fsync", "os.fdatasync", "os.sync",
    "sqlite3.connect",
    "urllib.request.urlopen",
    "shutil.copy", "shutil.copy2", "shutil.copytree", "shutil.rmtree",
})

#: Method names that do synchronous file I/O on any receiver.
FILE_IO_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: sqlite3 cursor/connection methods (gated on ``import sqlite3``).
SQLITE_METHODS = frozenset({
    "execute", "executemany", "executescript", "commit",
})

#: Storage-contract methods whose backends may hit disk inline; only
#: meaningful under ``cluster/`` where the durability tier lives.
DURABLE_METHODS = frozenset({
    "record_create", "record_diff", "apply_diff", "create",
})


class BlockingCallInAsync(Checker):
    id: ClassVar[str] = "blocking-call-in-async"
    description: ClassVar[str] = (
        "synchronous sleep/file/sqlite/subprocess/socket call lexically "
        "inside an async def (event-loop starvation)"
    )
    hint: ClassVar[str] = (
        "await the async API, offload with run_in_executor, or pragma "
        "with a justification for why the loop may wait"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if src.tree is None:
            return []
        imports_sqlite = src.imports_module("sqlite3")
        in_cluster = "cluster" in src.rel.split("/")
        findings: list[Finding] = []
        for call in _async_calls(src.tree):
            message = self._classify(call, imports_sqlite, in_cluster)
            if message is not None:
                findings.append(
                    self.finding(src, call.lineno, call.col_offset, message)
                )
        return findings

    def _classify(
        self, call: ast.Call, imports_sqlite: bool, in_cluster: bool
    ) -> str | None:
        name = call_name(call)
        if name in BLOCKING_CALLS:
            return f"blocking call {name}() inside async def"
        if name == "open":
            return "synchronous open() inside async def"
        method = last_segment(name) if name else ""
        if not method and isinstance(call.func, ast.Attribute):
            method = call.func.attr   # receiver is an expression, e.g. f().x
        if method in FILE_IO_METHODS:
            return f"synchronous file I/O .{method}() inside async def"
        if imports_sqlite and method in SQLITE_METHODS:
            return (
                f"sqlite3 .{method}() inside async def blocks the event "
                f"loop (connections are thread-bound)"
            )
        if in_cluster and method in DURABLE_METHODS and name != "open":
            return (
                f"storage .{method}() inside async def may commit to disk "
                f"on the event loop"
            )
        return None


def _async_calls(tree: ast.Module) -> Iterator[ast.Call]:
    """Call nodes lexically inside async-def bodies (nested sync defs
    and lambdas excluded)."""
    pending: list[tuple[ast.AST, bool]] = [(tree, False)]
    while pending:
        node, in_async = pending.pop()
        if isinstance(node, ast.AsyncFunctionDef):
            in_async = True
        elif isinstance(node, (ast.FunctionDef, ast.Lambda)):
            in_async = False
        if in_async and isinstance(node, ast.Call):
            yield node
        for child in ast.iter_child_nodes(node):
            pending.append((child, in_async))
