"""task-leak: fire-and-forget asyncio tasks must be owned by someone.

``asyncio.create_task(...)`` whose result is discarded (an expression
statement) is a leak twice over: the event loop holds only a weak
reference, so the task can be garbage-collected mid-flight, and its
exception — if it ever fails — is reported to nobody.  Every task in
this codebase is either awaited, stored on an owner (with a done
callback discarding it from the owning set), or cancelled at close;
this checker keeps it that way.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from repro.devtools.astutil import call_name, last_segment
from repro.devtools.checkers import Checker
from repro.devtools.findings import Finding
from repro.devtools.source import SourceFile

SPAWN_CALLS = frozenset({"create_task", "ensure_future"})


class TaskLeak(Checker):
    id: ClassVar[str] = "task-leak"
    description: ClassVar[str] = (
        "asyncio.create_task()/ensure_future() result discarded: the "
        "task is neither stored, awaited, nor callback-attached"
    )
    hint: ClassVar[str] = (
        "keep a strong reference (store it, add_done_callback into an "
        "owning set) or await it"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if src.tree is None:
            return []
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Expr):
                continue
            value = node.value
            if isinstance(value, ast.Await):
                continue   # awaited: result ownership is explicit
            if (
                isinstance(value, ast.Call)
                and last_segment(call_name(value)) in SPAWN_CALLS
            ):
                name = call_name(value) or "create_task"
                findings.append(self.finding(
                    src, value.lineno, value.col_offset,
                    f"{name}(...) result discarded — the spawned task "
                    f"can be garbage-collected mid-flight and its "
                    f"failure is silent",
                ))
        return findings
