"""monotonic-clock: wall clock must never feed duration arithmetic.

``time.time()`` jumps under NTP slew and manual clock changes, so any
value derived from it that flows into a subtraction — or into a
binding whose name says "duration" — is the bug class PR 7 fixed by
hand in ``service/metrics.py``.  Wall clock stays legal for genuine
timestamps (``*_unix``/``*_ts``/``*timestamp*`` names, trace-span
start stamps), which is how the production code labels them.

Detected patterns, per function scope:

* ``time.time()`` appearing directly as an operand of ``-`` (or of an
  ``-=``),
* ``x = time.time()`` where ``x`` is later an operand of ``-`` in the
  same scope (any name: subtracting two wall stamps is still wall
  drift),
* ``x = time.time()`` where ``x`` is named like a duration
  (``elapsed``/``duration``/``latency``/``rtt``),
* ``self.x = time.time()`` in one method with ``self.x`` subtracted in
  any other method of the same class.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from repro.devtools.astutil import dotted_name, scope_body, scopes
from repro.devtools.checkers import Checker
from repro.devtools.findings import Finding
from repro.devtools.source import SourceFile

DURATION_WORDS = ("elapsed", "duration", "latency", "rtt")


def _is_wall_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func) == "time.time"
    )


def _operand_name(node: ast.expr) -> str | None:
    """``x`` or ``self.x`` when the operand is a simple reference."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


class MonotonicClock(Checker):
    id: ClassVar[str] = "monotonic-clock"
    description: ClassVar[str] = (
        "time.time() value flows into a subtraction or a duration-named "
        "binding (wall clock is only for *_unix/*_ts timestamps)"
    )
    hint: ClassVar[str] = (
        "use time.monotonic()/time.perf_counter() for durations; keep "
        "time.time() for wall timestamps and name them *_unix/*_ts"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        if src.tree is None:
            return []
        findings: list[Finding] = []
        for scope in scopes(src.tree):
            findings.extend(self._check_scope(src, scope))
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(src, node))
        return findings

    def _check_scope(
        self,
        src: SourceFile,
        scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterable[Finding]:
        body = list(scope_body(scope))
        subtracted: set[str] = set()
        for node in body:
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                for operand in (node.left, node.right):
                    name = _operand_name(operand)
                    if name is not None:
                        subtracted.add(name)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Sub
            ):
                name = _operand_name(node.target)
                if name is not None:
                    subtracted.add(name)

        for node in body:
            # time.time() directly inside a subtraction
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                for operand in (node.left, node.right):
                    if _is_wall_call(operand):
                        yield self.finding(
                            src, operand.lineno, operand.col_offset,
                            "time.time() used directly in a subtraction "
                            "(wall-clock duration)",
                        )
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Sub
            ) and _is_wall_call(node.value):
                yield self.finding(
                    src, node.value.lineno, node.value.col_offset,
                    "time.time() used directly in a subtraction "
                    "(wall-clock duration)",
                )
            # x = time.time() with x later subtracted / duration-named
            if isinstance(node, ast.Assign) and _is_wall_call(node.value):
                for target in node.targets:
                    name = _operand_name(target)
                    if name is None:
                        continue
                    bare = name.rsplit(".", 1)[-1].lower()
                    if name in subtracted:
                        yield self.finding(
                            src, node.lineno, node.col_offset,
                            f"{name} = time.time() is subtracted later in "
                            f"this scope (wall-clock duration)",
                        )
                    elif any(word in bare for word in DURATION_WORDS):
                        yield self.finding(
                            src, node.lineno, node.col_offset,
                            f"{name} = time.time() binds a wall stamp to a "
                            f"duration-named variable",
                        )

    def _check_class(
        self, src: SourceFile, classdef: ast.ClassDef
    ) -> Iterable[Finding]:
        """``self.x = time.time()`` in one method, ``self.x`` subtracted
        in another (the per-scope pass only sees one method at a time)."""
        assigns: list[tuple[str, ast.Assign, int]] = []
        subtracted_in: dict[str, set[int]] = {}
        for index, method in enumerate(classdef.body):
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for node in scope_body(method):
                if isinstance(node, ast.Assign) and _is_wall_call(node.value):
                    for target in node.targets:
                        name = _operand_name(target)
                        if name is not None and name.startswith("self."):
                            assigns.append((name, node, index))
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, ast.Sub
                ):
                    for operand in (node.left, node.right):
                        name = _operand_name(operand)
                        if name is not None and name.startswith("self."):
                            subtracted_in.setdefault(name, set()).add(index)
        for name, node, index in assigns:
            # same-method subtractions were reported by the scope pass
            if subtracted_in.get(name, set()) - {index}:
                yield self.finding(
                    src, node.lineno, node.col_offset,
                    f"{name} = time.time() is subtracted elsewhere in "
                    f"{classdef.name} (wall-clock duration)",
                )
