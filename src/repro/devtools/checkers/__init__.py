"""Checker base class and registry.

A checker either inspects one file at a time (:meth:`Checker.check_file`)
or the whole project (:meth:`Checker.check_project`) when its invariant
spans files — frame-type exhaustiveness, schema pins.  Register new
checkers by appending to :data:`ALL_CHECKERS`.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import ClassVar

from repro.devtools.findings import Finding
from repro.devtools.source import Project, SourceFile


class Checker:
    """One project invariant, enforced over the AST."""

    id: ClassVar[str] = ""
    description: ClassVar[str] = ""
    hint: ClassVar[str] = ""

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    def finding(
        self, src_or_rel: SourceFile | str, line: int, col: int, message: str,
        hint: str | None = None,
    ) -> Finding:
        rel = (
            src_or_rel if isinstance(src_or_rel, str) else src_or_rel.rel
        )
        return Finding(
            checker=self.id, path=rel, line=line, col=col, message=message,
            hint=self.hint if hint is None else hint,
        )


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, in stable order."""
    from repro.devtools.checkers.async_blocking import BlockingCallInAsync
    from repro.devtools.checkers.clocks import MonotonicClock
    from repro.devtools.checkers.durability import DurableBeforeAck
    from repro.devtools.checkers.frames import WireFrameExhaustiveness
    from repro.devtools.checkers.rng import UnseededRng
    from repro.devtools.checkers.schemas import SchemaPinDrift
    from repro.devtools.checkers.tasks import TaskLeak

    return [
        BlockingCallInAsync(),
        MonotonicClock(),
        DurableBeforeAck(),
        WireFrameExhaustiveness(),
        SchemaPinDrift(),
        UnseededRng(),
        TaskLeak(),
    ]


def checker_ids() -> list[str]:
    return [checker.id for checker in all_checkers()]
