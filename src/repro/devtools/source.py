"""Parsed source files, suppression pragmas, and the project view.

Pragma syntax (checked — a malformed pragma is itself a finding)::

    x = blocking_call()   # repro: ignore[blocking-call-in-async] -- why

    # repro: ignore[monotonic-clock] -- justification on its own line
    t = time.time()

    # repro: ignore-file[unseeded-rng] -- whole-file suppression

A pragma on its own line suppresses findings on the *next* line; a
trailing pragma suppresses findings on its own line.  The
justification after ``--`` is mandatory: a suppression without a
recorded reason is exactly the review-comment rot this tool exists to
prevent.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>ignore(?:-file)?)"
    r"(?:\[(?P<ids>[^\]]*)\])?"
    r"\s*(?:--\s*(?P<why>.*\S))?\s*$"
)

#: Checker ids the framework itself emits (always valid in pragmas).
FRAMEWORK_CHECKERS = ("bad-pragma", "parse-error")


@dataclass
class Pragma:
    """One parsed ``# repro: ignore[...]`` comment."""

    ids: frozenset[str]
    justification: str
    line: int
    file_level: bool
    own_line: bool      #: comment is the only thing on its line

    def covers(self, checker_id: str) -> bool:
        return checker_id in self.ids


@dataclass
class SourceFile:
    """One parsed python file plus its pragmas."""

    path: Path                      #: absolute path on disk
    rel: str                        #: posix path relative to project root
    text: str
    lines: list[str]
    tree: ast.Module | None
    parse_error: str | None = None
    pragmas: dict[int, Pragma] = field(default_factory=dict)
    file_pragmas: list[Pragma] = field(default_factory=list)
    #: (line, message) pairs for malformed pragma comments
    bad_pragmas: list[tuple[int, str]] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def imports_module(self, module: str) -> bool:
        """True when the file's top-level imports include ``module``."""
        if self.tree is None:
            return False
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                if any(a.name.split(".")[0] == module for a in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == module:
                    return True
        return False

    def suppressed(self, checker_id: str, line: int) -> Pragma | None:
        """The pragma that suppresses ``checker_id`` at ``line``, if any."""
        for pragma in self.file_pragmas:
            if pragma.covers(checker_id):
                return pragma
        trailing = self.pragmas.get(line)
        if trailing is not None and trailing.covers(checker_id):
            return trailing
        # an own-line pragma covers the next statement; it may sit at the
        # top of a contiguous comment block (justifications wrap lines)
        probe = line - 1
        while probe >= 1 and self.line_text(probe).lstrip().startswith("#"):
            preceding = self.pragmas.get(probe)
            if (
                preceding is not None
                and preceding.own_line
                and preceding.covers(checker_id)
            ):
                return preceding
            probe -= 1
        return None


def _scan_pragmas(src: SourceFile, known_ids: frozenset[str]) -> None:
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(src.text).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return   # a parse-error finding already covers this file
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        if "repro:" not in tok.string:
            continue
        line_no, col = tok.start
        match = PRAGMA_RE.match(tok.string.strip())
        if match is None:
            src.bad_pragmas.append(
                (line_no, f"unparseable repro pragma: {tok.string.strip()!r}")
            )
            continue
        if match.group("ids") is None:
            src.bad_pragmas.append(
                (line_no,
                 "pragma needs explicit checker ids: "
                 "# repro: ignore[checker-id] -- reason")
            )
            continue
        ids = frozenset(
            part.strip() for part in match.group("ids").split(",")
            if part.strip()
        )
        if not ids:
            src.bad_pragmas.append((line_no, "pragma lists no checker ids"))
            continue
        unknown = sorted(ids - known_ids)
        if unknown:
            src.bad_pragmas.append(
                (line_no, f"pragma names unknown checker(s): "
                          f"{', '.join(unknown)}")
            )
            continue
        why = match.group("why") or ""
        if not why:
            src.bad_pragmas.append(
                (line_no,
                 "pragma needs a justification: "
                 "# repro: ignore[...] -- <why this is safe>")
            )
            continue
        own_line = src.line_text(line_no)[:col].strip() == ""
        pragma = Pragma(
            ids=ids, justification=why, line=line_no,
            file_level=match.group("kind") == "ignore-file",
            own_line=own_line,
        )
        if pragma.file_level:
            src.file_pragmas.append(pragma)
        else:
            src.pragmas[line_no] = pragma


def load_source(path: Path, root: Path, known_ids: frozenset[str]) -> SourceFile:
    """Read + parse one file; parse failures are recorded, not raised."""
    rel = path.resolve().relative_to(root.resolve()).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return SourceFile(
            path=path, rel=rel, text="", lines=[], tree=None,
            parse_error=f"unreadable: {exc}",
        )
    src = SourceFile(
        path=path, rel=rel, text=text, lines=text.splitlines(), tree=None,
    )
    try:
        src.tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        src.parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return src
    _scan_pragmas(src, known_ids)
    return src


def find_root(start: Path) -> Path:
    """The enclosing project root: nearest ancestor with pyproject.toml."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return probe


class Project:
    """The file set one run analyzes, plus on-demand access to the rest
    of the tree (cross-file checkers read wire definitions, pinning
    tests, and docs that may sit outside the target paths)."""

    def __init__(
        self, root: Path, paths: list[Path], known_ids: frozenset[str]
    ) -> None:
        self.root = root.resolve()
        self.known_ids = known_ids
        self.files: list[SourceFile] = []
        self._by_rel: dict[str, SourceFile | None] = {}
        for target in paths:
            for path in self._expand(target):
                src = load_source(path, self.root, known_ids)
                self.files.append(src)
                self._by_rel[src.rel] = src

    def _expand(self, target: Path) -> list[Path]:
        if target.is_dir():
            return sorted(
                p for p in target.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        if target.suffix == ".py" and target.exists():
            return [target]
        return []

    def file(self, rel: str) -> SourceFile | None:
        """The parsed file at ``rel`` (project-root relative), loading it
        on demand; ``None`` when it does not exist."""
        if rel not in self._by_rel:
            path = self.root / rel
            self._by_rel[rel] = (
                load_source(path, self.root, self.known_ids)
                if path.exists() else None
            )
        return self._by_rel[rel]

    def glob(self, pattern: str) -> list[str]:
        """Project-root-relative posix paths matching ``pattern``."""
        return sorted(
            p.resolve().relative_to(self.root).as_posix()
            for p in self.root.glob(pattern)
            if "__pycache__" not in p.parts
        )

    def read_text(self, rel: str) -> str | None:
        """Raw text of any project file (docs included), or ``None``."""
        path = self.root / rel
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None
