"""Small AST helpers shared by the checkers."""

from __future__ import annotations

import ast
from collections.abc import Iterator


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, when statically resolvable."""
    return dotted_name(node.func)


def last_segment(name: str | None) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


def scopes(tree: ast.Module) -> Iterator[ast.Module | ast.FunctionDef |
                                         ast.AsyncFunctionDef]:
    """The module plus every (async) function definition in it."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def scope_body(
    scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Every node owned by ``scope`` itself, not by a nested function
    (nested defs open their own scope and are visited separately)."""
    pending: list[ast.AST] = list(scope.body)
    while pending:
        node = pending.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue   # a nested def owns its own body
        for child in ast.iter_child_nodes(node):
            pending.append(child)


def enum_members(classdef: ast.ClassDef) -> dict[str, int]:
    """``NAME -> line`` for the simple member assignments of an enum."""
    members: dict[str, int] = {}
    for stmt in classdef.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            members[stmt.targets[0].id] = stmt.lineno
    return members


def find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def module_int_assign(tree: ast.Module, name: str) -> tuple[int, int] | None:
    """``(value, line)`` of a module-level ``NAME = <int literal>``."""
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, int)
        ):
            return stmt.value.value, stmt.lineno
    return None
