"""Parity Bitmap Sketch (PBS) set reconciliation — paper reproduction.

This package is a from-scratch Python implementation of

    Gong, Liu, Liu, Xu, Ogihara, Yang.
    "Space- and Computationally-Efficient Set Reconciliation via
    Parity Bitmap Sketch (PBS)."  PVLDB 14, VLDB 2020.  arXiv:2007.14569.

It contains the PBS protocol itself (:mod:`repro.core`), the paper's
Markov-chain analytical framework (:mod:`repro.analysis`), the Tug-of-War
set-difference estimator (:mod:`repro.estimators`), every baseline the paper
evaluates against (:mod:`repro.baselines`), and all the substrates those
need: finite fields (:mod:`repro.gf`), BCH syndrome coding (:mod:`repro.bch`),
hash families (:mod:`repro.hashing`), a byte-accounting transport
(:mod:`repro.transport`) and workload generation (:mod:`repro.workloads`).
Beyond the paper, :mod:`repro.service` serves reconciliation over sockets:
an asyncio server multiplexing many concurrent sessions with
cross-session BCH decode batching.

Quickstart
----------
>>> from repro import reconcile_pbs
>>> from repro.workloads import SetPairGenerator
>>> pair = SetPairGenerator(universe_bits=32, seed=1).generate(size_a=10_000, d=50)
>>> result = reconcile_pbs(pair.a, pair.b, seed=7)
>>> result.success and result.difference == pair.difference
True
"""

from repro.errors import DecodeFailure, ReconciliationFailure, ReproError

# The heavyweight protocol symbols are re-exported lazily so that importing
# a substrate subpackage (repro.gf, repro.hashing, ...) does not pull in the
# whole protocol stack.
_LAZY_EXPORTS = {
    "PBSProtocol": ("repro.core.protocol", "PBSProtocol"),
    "reconcile_pbs": ("repro.core.protocol", "reconcile_pbs"),
    "PBSParams": ("repro.core.params", "PBSParams"),
    "ReconciliationResult": ("repro.transport.runner", "ReconciliationResult"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


__all__ = [
    "PBSProtocol",
    "PBSParams",
    "ReconciliationResult",
    "reconcile_pbs",
    "ReproError",
    "DecodeFailure",
    "ReconciliationFailure",
]

__version__ = "1.2.0"
