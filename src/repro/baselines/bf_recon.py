"""Bloom-filter approximate reconciliation — the §7 "crude scheme".

Alice and Bob exchange plain Bloom filters; each side lists its elements
that the other's filter rejects.  The union of the two lists approximates
A xor B — but only approximates it: BF false positives make each side
*miss* some of its private elements, so the result is systematically an
**underestimate** of the true difference (the §7 criticism of [9, 19,
25]).  Included as the paper's point of contrast: the accuracy/size
trade-off is measurable with :meth:`BFReconProtocol.run`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.bloom import BloomFilter
from repro.core.sessions import _as_element_array
from repro.transport.channel import Channel, Direction
from repro.transport.runner import ReconciliationResult
from repro.utils.seeds import derive_seed


class BFReconProtocol:
    """Approximate (lossy) reconciliation via crossed Bloom filters.

    >>> r = BFReconProtocol(seed=1).run({1, 2, 3}, {3, 4})
    >>> r.difference <= {1, 2, 4}   # never invents elements ...
    True
    >>> r.extra["approximate"]      # ... but may miss some
    True
    """

    def __init__(self, seed: int = 0, fpr: float = 0.01, log_u: int = 32) -> None:
        self.seed = seed
        self.fpr = fpr
        self.log_u = log_u

    def run(
        self,
        set_a,
        set_b,
        channel: Channel | None = None,
        true_d: int | None = None,
        estimated_d: int | None = None,
    ) -> ReconciliationResult:
        """Alice obtains an *underestimate* of A xor B; ``success`` is True
        iff the estimate happens to be exact."""
        del true_d, estimated_d  # BF sizing depends only on set sizes
        channel = channel if channel is not None else Channel()
        arr_a = _as_element_array(set_a, self.log_u)
        arr_b = _as_element_array(set_b, self.log_u)

        encode_start = time.perf_counter()
        bf_a = BloomFilter.for_capacity(
            max(1, len(arr_a)), self.fpr, seed=derive_seed(self.seed, "bf-a")
        )
        bf_a.insert_many(arr_a)
        bf_b = BloomFilter.for_capacity(
            max(1, len(arr_b)), self.fpr, seed=derive_seed(self.seed, "bf-b")
        )
        bf_b.insert_many(arr_b)
        encode_s = time.perf_counter() - encode_start

        channel.send(Direction.ALICE_TO_BOB, bf_a.serialize(), 1, "bloom")
        channel.send(Direction.BOB_TO_ALICE, bf_b.serialize(), 1, "bloom")

        decode_start = time.perf_counter()
        a_missing = arr_a[~bf_b.contains_many(arr_a)] if len(arr_a) else arr_a
        b_missing = arr_b[~bf_a.contains_many(arr_b)] if len(arr_b) else arr_b
        # Bob reports his list to Alice (element payload).
        channel.send(
            Direction.BOB_TO_ALICE,
            b_missing.astype(np.uint64).tobytes(),
            2,
            "elements",
        )
        estimate = frozenset(int(v) for v in a_missing) | frozenset(
            int(v) for v in b_missing
        )
        decode_s = time.perf_counter() - decode_start

        truth = frozenset(int(v) for v in np.setxor1d(arr_a, arr_b))
        return ReconciliationResult(
            success=estimate == truth,
            difference=estimate,
            rounds=2,
            channel=channel,
            encode_s=encode_s,
            decode_s=decode_s,
            extra={"approximate": True, "missed": len(truth - estimate)},
        )
