"""Baseline set-reconciliation schemes the paper evaluates against (§7, §8).

* :mod:`repro.baselines.ibf` — invertible Bloom filters (IBF / IBLT), the
  substrate of Difference Digest and Graphene;
* :mod:`repro.baselines.ddigest` — Difference Digest [15];
* :mod:`repro.baselines.bloom` — plain Bloom filters;
* :mod:`repro.baselines.graphene` — Graphene Protocol I [32];
* :mod:`repro.baselines.pinsketch` — PinSketch [13] over GF(2^32);
* :mod:`repro.baselines.pinsketch_wp` — PinSketch with PBS's partitioning
  (§8.3).
"""

from repro.baselines.bf_recon import BFReconProtocol
from repro.baselines.bloom import BloomFilter
from repro.baselines.ddigest import DifferenceDigestProtocol
from repro.baselines.graphene import GrapheneProtocol
from repro.baselines.ibf import IBF
from repro.baselines.pinsketch import PinSketchProtocol
from repro.baselines.pinsketch_wp import PinSketchWPProtocol

__all__ = [
    "IBF",
    "BFReconProtocol",
    "BloomFilter",
    "DifferenceDigestProtocol",
    "GrapheneProtocol",
    "PinSketchProtocol",
    "PinSketchWPProtocol",
]
