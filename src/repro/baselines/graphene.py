"""Graphene Protocol I [32] — the BF + IBLT baseline of §8.2.

Setting (the paper's Fig. 2 experiment, Graphene's best case): ``B ⊂ A``
and Alice must learn ``A \\ B``.  Both sides know |A| and |B|, so
``d = |A| - |B|`` is *exact* — no cardinality estimator is needed (which
is why the paper credits Graphene 336 bytes in its accounting; we simply
never charge estimator bytes to anyone).

Bob sends a Bloom filter of B with false-positive rate ``eps`` plus an
IBLT of B.  Alice passes every element of A through the BF: definite
misses are certainly in ``A \\ B``; the survivors S = B ∪ {false
positives} are reconciled against B via IBLT subtraction, which has to
peel only the ~``eps * d`` false positives instead of all d differences.

The size optimizer reproduces Graphene's two regimes: for small d the BF
is not worth its O(|B|) cost and the protocol degenerates to IBLT-only
(sized for exactly d — still cheaper than D.Digest's ``2 * d_hat`` cells
because d is exact); past a breakeven d the BF+IBLT combination wins and
the per-difference overhead falls — the slope change visible in Fig. 2b.

The IBLT headroom for the Binomial false-positive count is a Chernoff
tail bound at the target failure rate (239/240 in the paper's setup).
"""

from __future__ import annotations

import math
import struct
import time

import numpy as np

from repro.baselines.bloom import BloomFilter
from repro.baselines.ibf import IBF
from repro.core.sessions import _as_element_array
from repro.errors import DecodeFailure
from repro.transport.channel import Channel, Direction
from repro.transport.runner import ReconciliationResult
from repro.utils.seeds import derive_seed

_LN2_SQ = math.log(2) ** 2


def _chernoff_headroom(mean: float, failure: float) -> int:
    """Smallest a with ``P[Binomial/Poisson(mean) >= a] <= failure``.

    Uses the multiplicative Chernoff bound ``P[X >= a] <= e^(a - mean)
    * (mean / a)^a`` (valid for a > mean), which is what Graphene's
    parameterization uses for its IBLT headroom.
    """
    if mean <= 0:
        return 1
    log_failure = math.log(failure)
    a = math.ceil(mean) + 1
    while True:
        log_tail = (a - mean) + a * (math.log(mean) - math.log(a))
        if log_tail <= log_failure:
            return a
        a += 1


def _iblt_cells(capacity: int) -> tuple[int, int]:
    """(cells, hashes) for reliable peeling of ``capacity`` items.

    1.4x headroom plus an additive cushion for the small-count regime,
    where the asymptotic peeling threshold does not yet apply.
    """
    capacity = max(0, capacity)
    n_hashes = 3 if capacity > 200 else 4
    cells = max(2 * n_hashes, math.ceil(1.4 * capacity) + 8)
    return cells, n_hashes


class GrapheneProtocol:
    """Graphene Protocol I (B ⊂ A best case).

    >>> proto = GrapheneProtocol(seed=1)
    >>> r = proto.run({1, 2, 3, 4}, {2, 3})
    >>> (r.success, sorted(r.difference))
    (True, [1, 4])
    """

    def __init__(
        self,
        seed: int = 0,
        log_u: int = 32,
        failure_target: float = 1.0 / 240.0,
    ) -> None:
        self.seed = seed
        self.log_u = log_u
        self.failure_target = failure_target

    # -- sizing ---------------------------------------------------------------
    def plan(self, size_b: int, d: int) -> dict:
        """Choose eps and IBLT capacity minimizing total wire bits.

        Returns a dict with ``use_bf``, ``eps``, ``iblt_cells``,
        ``iblt_hashes``.  The eps grid covers 2^-1 .. 2^-24; the IBLT-only
        degenerate plan is always a candidate (Graphene drops the BF when
        |B| >> d, §7).
        """
        cells0, hashes0 = _iblt_cells(d + _chernoff_headroom(0.0, self.failure_target))
        best = {
            "use_bf": False,
            "eps": 1.0,
            "iblt_cells": cells0,
            "iblt_hashes": hashes0,
            "bits": cells0 * IBF.cell_bits(self.log_u),
        }
        if size_b == 0 or d == 0:
            return best
        for k in range(1, 25):
            eps = 2.0 ** -k
            bf_bits = math.ceil(-size_b * math.log(eps) / _LN2_SQ)
            headroom = _chernoff_headroom(eps * d, self.failure_target)
            cells, hashes = _iblt_cells(headroom)
            bits = bf_bits + cells * IBF.cell_bits(self.log_u)
            if bits < best["bits"]:
                best = {
                    "use_bf": True,
                    "eps": eps,
                    "iblt_cells": cells,
                    "iblt_hashes": hashes,
                    "bits": bits,
                }
        return best

    # -- run --------------------------------------------------------------------
    def run(
        self,
        set_a,
        set_b,
        channel: Channel | None = None,
        true_d: int | None = None,
        estimated_d: int | None = None,
    ) -> ReconciliationResult:
        """Unidirectional reconciliation; Alice learns A xor B (B ⊂ A case).

        ``true_d`` / ``estimated_d`` are accepted for interface parity but
        ignored: Graphene I derives d exactly from |A| - |B|.
        """
        del true_d, estimated_d
        channel = channel if channel is not None else Channel()
        arr_a = _as_element_array(set_a, self.log_u)
        arr_b = _as_element_array(set_b, self.log_u)
        d = max(0, len(arr_a) - len(arr_b))

        # Size exchange (8 bytes), then Bob's BF + IBLT.
        channel.send(
            Direction.ALICE_TO_BOB, struct.pack("<I", len(arr_a)), 1, "sizes"
        )
        plan = self.plan(len(arr_b), d)

        encode_start = time.perf_counter()
        bf = None
        if plan["use_bf"]:
            bf = BloomFilter.for_capacity(
                len(arr_b), plan["eps"], seed=derive_seed(self.seed, "graphene-bf")
            )
            bf.insert_many(arr_b)
        iblt_seed = derive_seed(self.seed, "graphene-iblt")
        iblt_b = IBF(
            plan["iblt_cells"], plan["iblt_hashes"], seed=iblt_seed, log_u=self.log_u
        )
        iblt_b.insert_many(arr_b)
        payload = (bf.serialize() if bf else b"") + iblt_b.serialize()
        encode_s = time.perf_counter() - encode_start
        channel.send(Direction.BOB_TO_ALICE, payload, 1, "bf+iblt")

        decode_start = time.perf_counter()
        if bf is not None:
            passing = bf.contains_many(arr_a)
            survivors = arr_a[passing]
            misses = arr_a[~passing]
        else:
            survivors = arr_a
            misses = arr_a[:0]
        iblt_s = IBF(
            plan["iblt_cells"], plan["iblt_hashes"], seed=iblt_seed, log_u=self.log_u
        )
        iblt_s.insert_many(survivors)
        try:
            false_pos, b_only = iblt_s.subtract(iblt_b).decode()
            difference = (
                frozenset(int(v) for v in misses)
                | frozenset(false_pos)
                | frozenset(b_only)
            )
            success = len(difference) == len(arr_a) + len(arr_b) - 2 * len(
                np.intersect1d(arr_a, arr_b)
            )
        except DecodeFailure:
            success = False
            difference = frozenset(int(v) for v in misses)
        decode_s = time.perf_counter() - decode_start

        return ReconciliationResult(
            success=success,
            difference=difference,
            rounds=1,
            channel=channel,
            encode_s=encode_s,
            decode_s=decode_s,
            extra={"plan": plan, "d_exact": d},
        )
