"""PinSketch with partition ("PinSketch/WP", §8.3).

The same hash-partitioning trick as PBS — g = d/delta groups, a uniform
capacity t per group — applied to PinSketch.  Each group pair exchanges a
t-syndrome sketch over GF(2^32) plus a checksum; decoding a group costs
O(t^2) = O(1), so the total decode cost drops to O(d), but every sketch
symbol costs ``log|U|`` bits instead of PBS's ``log n``.  The safety
margin ``t - delta`` therefore costs 3-4x more than in PBS, which is the
§8.3 communication-overhead argument (and the entire point of the parity
*bitmap* indirection in PBS).

Multi-round behaviour mirrors PBS §3.2: a group whose decode or checksum
verification fails is hash-split three ways into fresh sub-group-pairs in
the next round (re-sketching an unchanged group cannot help, because
unlike PBS there is no per-round re-binning randomness).  Alice sends one
continuation bit per pending unit; Bob answers with sub-group sketches.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.analysis.optimizer import optimize_params
from repro.bch.codec import BCHCodec
from repro.core.checksum import set_checksum
from repro.core.partition import split_by_hash
from repro.core.sessions import _as_element_array, _partition_by_group
from repro.core.units import SPLIT_WAYS
from repro.gf import field_for
from repro.transport.channel import Channel, Direction
from repro.transport.runner import ReconciliationResult
from repro.utils.bitio import BitWriter
from repro.utils.seeds import derive_seed


@dataclass
class _WPUnit:
    """One group pair (or split descendant) tracked by both sides."""

    a_values: np.ndarray
    b_values: np.ndarray
    path: tuple = ()
    diff: frozenset = dc_field(default_factory=frozenset)


class PinSketchWPProtocol:
    """Partitioned PinSketch with PBS-style three-way split recovery.

    >>> proto = PinSketchWPProtocol(seed=1)
    >>> r = proto.run({1, 2, 3, 9}, {2, 3, 4}, true_d=3)
    >>> (r.success, sorted(r.difference))
    (True, [1, 4, 9])
    """

    def __init__(
        self,
        seed: int = 0,
        log_u: int = 32,
        delta: int = 5,
        r: int = 3,
        p0: float = 0.99,
        gamma: float = 1.38,
        assume_subset: bool = True,
        split_model: str = "three-way",
        batch: bool = True,
    ) -> None:
        self.seed = seed
        self.log_u = log_u
        self.delta = delta
        self.r = r
        self.p0 = p0
        self.gamma = gamma
        self.assume_subset = assume_subset
        self.split_model = split_model
        #: batched multi-group sketch + decode per round (scalar per-group
        #: loop kept behind batch=False for cross-checking)
        self.batch = batch

    def run(
        self,
        set_a,
        set_b,
        channel: Channel | None = None,
        true_d: int | None = None,
        estimated_d: int | None = None,
        max_rounds: int | None = None,
    ) -> ReconciliationResult:
        """Unidirectional reconciliation; Alice learns A xor B."""
        channel = channel if channel is not None else Channel()
        if estimated_d is not None:
            # §6.2 inflation of a raw estimate, same policy as PBS (§8.3).
            design_d = max(1, math.ceil(self.gamma * estimated_d))
        else:
            design_d = max(1, true_d or 1)
        # Same (delta, t) as PBS (§8.3); only the symbol width differs.
        best = optimize_params(
            design_d, delta=self.delta, r=self.r, p0=self.p0,
            split_model=self.split_model,
        )
        t, g = best.t, best.g
        field = field_for(self.log_u)
        codec = BCHCodec(field, t)
        budget = max_rounds if max_rounds is not None else self.r

        arr_a = _as_element_array(set_a, self.log_u)
        arr_b = _as_element_array(set_b, self.log_u)
        group_salt = derive_seed(self.seed, "wp-group")
        groups_a = _partition_by_group(arr_a, group_salt, g)
        groups_b = _partition_by_group(arr_b, group_salt, g)
        pending = [_WPUnit(groups_a[i], groups_b[i]) for i in range(g)]
        resolved: list[frozenset[int]] = []

        encode_s = 0.0
        decode_s = 0.0
        rounds_used = 0
        for round_no in range(1, budget + 1):
            if not pending:
                break
            rounds_used = round_no
            # Alice -> Bob: continuation notice (1 bit per pending unit in
            # rounds >= 2; round 1 is implicit).
            if round_no > 1:
                channel.send(
                    Direction.ALICE_TO_BOB,
                    bytes((len(pending) + 7) // 8),
                    round_no=round_no,
                    label="control",
                )
            # Bob -> Alice: per-unit sketch + checksum.  Every group's
            # syndromes are computed in one batched pass over a stacked
            # element matrix; only the bit-packing stays per unit.
            encode_start = time.perf_counter()
            sketches_b = codec.sketch_many(
                [unit.b_values for unit in pending], batch=self.batch
            )
            writer = BitWriter()
            for unit, sk in zip(pending, sketches_b):
                for s in sk:
                    writer.write(s, self.log_u)
                writer.write(set_checksum(unit.b_values, self.log_u), self.log_u)
            wire = writer.getvalue()
            encode_s += time.perf_counter() - encode_start
            channel.send(
                Direction.BOB_TO_ALICE, wire, round_no=round_no, label="syndromes"
            )

            encode_start = time.perf_counter()
            sketches_a = codec.sketch_many(
                [unit.a_values for unit in pending], batch=self.batch
            )
            encode_s += time.perf_counter() - encode_start

            decode_start = time.perf_counter()
            deltas = [
                codec.sketch_xor(sa, sb)
                for sa, sb in zip(sketches_a, sketches_b)
            ]
            candidates = (
                [unit.a_values for unit in pending]
                if self.assume_subset
                else None
            )
            decoded = codec.decode_many(
                deltas, candidates=candidates, batch=self.batch, seed=self.seed
            )
            outcomes: list[frozenset[int] | None] = []
            for unit, elements in zip(pending, decoded):
                diff: frozenset[int] | None = None
                if elements is not None:
                    candidate_diff = frozenset(elements)
                    recovered = np.setxor1d(
                        unit.a_values,
                        np.array(sorted(candidate_diff), dtype=np.uint64),
                    )
                    if set_checksum(recovered, self.log_u) == set_checksum(
                        unit.b_values, self.log_u
                    ):
                        diff = candidate_diff
                outcomes.append(diff)
            decode_s += time.perf_counter() - decode_start

            # Splitting failed units is bookkeeping for the next round, not
            # decoding — keep it outside the timed window like the scalar
            # per-unit loop did.
            next_pending: list[_WPUnit] = []
            for unit, diff in zip(pending, outcomes):
                if diff is not None:
                    unit.diff = diff
                    resolved.append(diff)
                else:
                    next_pending.extend(self._split(unit, round_no))
            pending = next_pending

        success = not pending
        difference: set[int] = set()
        for diff in resolved:
            difference |= diff
        return ReconciliationResult(
            success=success,
            difference=frozenset(difference),
            rounds=rounds_used,
            channel=channel,
            encode_s=encode_s,
            decode_s=decode_s,
            extra={"t": t, "g": g},
        )

    def _split(self, unit: _WPUnit, round_no: int) -> list[_WPUnit]:
        salt = derive_seed(self.seed, "wp-split", unit.path, round_no)
        parts_a = split_by_hash(unit.a_values, salt, SPLIT_WAYS)
        parts_b = split_by_hash(unit.b_values, salt, SPLIT_WAYS)
        return [
            _WPUnit(parts_a[b], parts_b[b], path=unit.path + (round_no, b))
            for b in range(SPLIT_WAYS)
        ]
