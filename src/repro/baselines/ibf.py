"""Invertible Bloom filter (IBF / invertible Bloom lookup table).

Each element is inserted into k cells — one per subtable, guaranteeing the
k cells are distinct — and each cell keeps three fields (§7):

* ``count``  — signed number of insertions minus deletions,
* ``id_sum`` — XOR of the inserted element values,
* ``hash_sum`` — XOR of a check hash of the values.

Subtracting two IBFs cellwise yields the IBF of the symmetric difference
with signs: elements only in A have net count +1, only in B have -1.  The
*peeling* decoder repeatedly consumes "pure" cells (|count| = 1 and the
check hash matches the id), exactly like the erasure-peeling of Tornado
codes [24].  Decoding succeeds w.h.p. when the cell count is ~1.5x-2x the
difference size; Difference Digest uses 2 * d_hat cells (§8.1.1).

Wire size is ``cells * (32 + log|U| + log|U|)`` bits, matching the paper's
``6 d log|U|`` accounting for D.Digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DecodeFailure, ParameterError
from repro.hashing.families import SaltedHash
from repro.utils.seeds import derive_seed

#: Width of the signed count field on the wire (one machine word, matching
#: the 3-words-per-cell accounting of [15]).
_COUNT_BITS = 32


@dataclass
class IBF:
    """An invertible Bloom filter with k subtables.

    >>> import numpy as np
    >>> f = IBF(n_cells=40, n_hashes=4, seed=1)
    >>> f.insert_many(np.array([10, 20, 30], dtype=np.uint64))
    >>> g = IBF(n_cells=40, n_hashes=4, seed=1)
    >>> g.insert_many(np.array([20, 40], dtype=np.uint64))
    >>> a_only, b_only = f.subtract(g).decode()
    >>> (sorted(a_only), sorted(b_only))
    ([10, 30], [40])
    """

    n_cells: int
    n_hashes: int
    seed: int = 0
    log_u: int = 32
    counts: np.ndarray = field(init=False, repr=False)
    id_sums: np.ndarray = field(init=False, repr=False)
    hash_sums: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_hashes < 2:
            raise ParameterError("IBF needs at least 2 hashes")
        if self.n_cells < self.n_hashes:
            raise ParameterError(
                f"{self.n_cells} cells cannot host {self.n_hashes} subtables"
            )
        self.counts = np.zeros(self.n_cells, dtype=np.int64)
        self.id_sums = np.zeros(self.n_cells, dtype=np.uint64)
        self.hash_sums = np.zeros(self.n_cells, dtype=np.uint64)
        base, extra = divmod(self.n_cells, self.n_hashes)
        sizes = [base + (1 if i < extra else 0) for i in range(self.n_hashes)]
        self._offsets = np.concatenate([[0], np.cumsum(sizes)])[:-1]
        self._sizes = np.array(sizes)
        self._hashes = [
            SaltedHash(derive_seed(self.seed, "ibf", i))
            for i in range(self.n_hashes)
        ]
        self._check = SaltedHash(derive_seed(self.seed, "ibf-check"))
        self._check_mask = np.uint64((1 << self.log_u) - 1)

    # -- construction --------------------------------------------------------
    def _cells_of_vec(self, values: np.ndarray, j: int) -> np.ndarray:
        return self._offsets[j] + self._hashes[j].bucket_vec(
            values, int(self._sizes[j])
        )

    def _check_of_vec(self, values: np.ndarray) -> np.ndarray:
        return self._check.hash_vec(values) & self._check_mask

    def insert_many(self, values: np.ndarray, sign: int = 1) -> None:
        """Insert (sign=+1) or delete (sign=-1) a batch of elements."""
        values = np.asarray(values, dtype=np.uint64)
        if len(values) == 0:
            return
        checks = self._check_of_vec(values)
        for j in range(self.n_hashes):
            idx = self._cells_of_vec(values, j)
            np.add.at(self.counts, idx, sign)
            np.bitwise_xor.at(self.id_sums, idx, values)
            np.bitwise_xor.at(self.hash_sums, idx, checks)

    # -- algebra ---------------------------------------------------------------
    def subtract(self, other: "IBF") -> "IBF":
        """Cellwise difference; decodes to (mine \\ theirs, theirs \\ mine)."""
        if (
            self.n_cells != other.n_cells
            or self.n_hashes != other.n_hashes
            or self.seed != other.seed
        ):
            raise ParameterError("cannot subtract incompatible IBFs")
        out = IBF(self.n_cells, self.n_hashes, self.seed, self.log_u)
        out.counts = self.counts - other.counts
        out.id_sums = self.id_sums ^ other.id_sums
        out.hash_sums = self.hash_sums ^ other.hash_sums
        return out

    # -- decoding ----------------------------------------------------------------
    def _is_pure(self, cell: int) -> bool:
        if self.counts[cell] not in (1, -1):
            return False
        value = self.id_sums[cell]
        check = self._check.hash_vec(np.array([value], dtype=np.uint64))[0]
        return bool((check & self._check_mask) == self.hash_sums[cell])

    def decode(self) -> tuple[list[int], list[int]]:
        """Peel the difference IBF; returns (positive side, negative side).

        Raises :class:`DecodeFailure` if peeling stalls before the filter
        empties (too many differences for the cell count).
        """
        positive: list[int] = []
        negative: list[int] = []
        queue = [c for c in range(self.n_cells) if self._is_pure(c)]
        while queue:
            cell = queue.pop()
            if not self._is_pure(cell):
                continue
            sign = int(self.counts[cell])
            value = np.uint64(self.id_sums[cell])
            (positive if sign == 1 else negative).append(int(value))
            arr = np.array([value], dtype=np.uint64)
            check = self._check_of_vec(arr)[0]
            for j in range(self.n_hashes):
                idx = int(self._cells_of_vec(arr, j)[0])
                self.counts[idx] -= sign
                self.id_sums[idx] ^= value
                self.hash_sums[idx] ^= check
                if self._is_pure(idx):
                    queue.append(idx)
        if self.counts.any() or self.id_sums.any() or self.hash_sums.any():
            raise DecodeFailure("IBF peeling stalled before emptying")
        return positive, negative

    # -- accounting --------------------------------------------------------------
    @staticmethod
    def cell_bits(log_u: int = 32) -> int:
        """Wire bits per cell: count word + id sum + hash sum."""
        return _COUNT_BITS + 2 * log_u

    def wire_bytes(self) -> int:
        """Serialized size of this IBF."""
        return (self.n_cells * self.cell_bits(self.log_u) + 7) // 8

    def serialize(self) -> bytes:
        """Pack cells as (count, id_sum, hash_sum) records."""
        from repro.utils.bitio import BitWriter

        writer = BitWriter()
        bias = 1 << (_COUNT_BITS - 1)
        for c, i, h in zip(self.counts, self.id_sums, self.hash_sums):
            writer.write(int(c) + bias, _COUNT_BITS)
            writer.write(int(i), self.log_u)
            writer.write(int(h), self.log_u)
        return writer.getvalue()
