"""Difference Digest [15] — the IBF-based baseline of §8.1.

Configuration follows the paper's §8.1.1: the IBF gets ``2 * d_hat`` cells
(the factor 2 covers both the estimator's randomness and the peeling
threshold) and 3 hash functions when ``d_hat > 200``, else 4.  Bob ships
his IBF; Alice subtracts her own and peels.  Communication is one IBF —
about ``6 d log|U|`` bits, six times the theoretical minimum (§7).
"""

from __future__ import annotations

import time


from repro.baselines.ibf import IBF
from repro.core.sessions import _as_element_array
from repro.errors import DecodeFailure
from repro.transport.channel import Channel, Direction
from repro.transport.runner import ReconciliationResult
from repro.utils.seeds import derive_seed


class DifferenceDigestProtocol:
    """One-round IBF reconciliation.

    >>> proto = DifferenceDigestProtocol(seed=1)
    >>> r = proto.run({1, 2, 3}, {2, 3, 4}, true_d=2)
    >>> (r.success, sorted(r.difference))
    (True, [1, 4])
    """

    def __init__(self, seed: int = 0, log_u: int = 32) -> None:
        self.seed = seed
        self.log_u = log_u

    @staticmethod
    def cells_for(d_hat: int) -> tuple[int, int]:
        """(cells, hashes) per §8.1.1: 2*d_hat cells; 3 or 4 hashes."""
        d_hat = max(1, d_hat)
        n_hashes = 3 if d_hat > 200 else 4
        cells = max(2 * d_hat, 2 * n_hashes)
        return cells, n_hashes

    def run(
        self,
        set_a,
        set_b,
        channel: Channel | None = None,
        true_d: int | None = None,
        estimated_d: int | None = None,
    ) -> ReconciliationResult:
        """Unidirectional reconciliation; Alice learns A xor B."""
        channel = channel if channel is not None else Channel()
        d_hat = estimated_d if estimated_d is not None else (true_d or 1)
        cells, n_hashes = self.cells_for(d_hat)
        ibf_seed = derive_seed(self.seed, "ddigest")

        arr_a = _as_element_array(set_a, self.log_u)
        arr_b = _as_element_array(set_b, self.log_u)

        encode_start = time.perf_counter()
        ibf_b = IBF(cells, n_hashes, seed=ibf_seed, log_u=self.log_u)
        ibf_b.insert_many(arr_b)
        wire = ibf_b.serialize()
        ibf_a = IBF(cells, n_hashes, seed=ibf_seed, log_u=self.log_u)
        ibf_a.insert_many(arr_a)
        encode_s = time.perf_counter() - encode_start

        channel.send(Direction.BOB_TO_ALICE, wire, round_no=1, label="ibf")

        decode_start = time.perf_counter()
        delta = ibf_a.subtract(ibf_b)
        try:
            a_only, b_only = delta.decode()
            success = True
            difference = frozenset(a_only) | frozenset(b_only)
        except DecodeFailure:
            success = False
            difference = frozenset()
        decode_s = time.perf_counter() - decode_start

        return ReconciliationResult(
            success=success,
            difference=difference,
            rounds=1,
            channel=channel,
            encode_s=encode_s,
            decode_s=decode_s,
            extra={"cells": cells, "hashes": n_hashes},
        )
