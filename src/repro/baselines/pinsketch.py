"""PinSketch [13] — the ECC-based baseline of §8.1.

The whole universe is one "bitmap": each (nonzero) 32-bit signature is a
field element of GF(2^32), and the sketch of a set is its t odd power-sum
syndromes, ``t * log|U|`` bits total.  Bob ships his sketch; Alice XORs in
her own and BCH-decodes the result — O(t^2) = O(d^2) field operations,
which is exactly the computational bottleneck PBS removes (§1.2).

Capacity follows §8.1.1: ``t = ceil(1.38 * d_hat)`` so that
``P[d <= t] >= 0.99`` under the ToW estimator.

Root finding: with the paper's evaluation workload (``B ⊂ A``) every
difference element lies in Alice's set, so the decoder evaluates the
locator over her elements (vectorized Horner).  For general two-sided
differences pass ``assume_subset=False`` to use the Berlekamp trace
algorithm instead (slower but fully general).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.bch.codec import BCHCodec
from repro.core.checksum import set_checksum
from repro.core.sessions import _as_element_array
from repro.errors import DecodeFailure
from repro.gf import field_for
from repro.transport.channel import Channel, Direction
from repro.transport.runner import ReconciliationResult
from repro.utils.bitio import BitWriter


class PinSketchProtocol:
    """One-shot syndrome reconciliation over GF(2^32).

    >>> proto = PinSketchProtocol()
    >>> r = proto.run({1, 2, 3}, {2, 3, 4}, true_d=2)
    >>> (r.success, sorted(r.difference))
    (True, [1, 4])
    """

    def __init__(
        self,
        seed: int = 0,
        log_u: int = 32,
        gamma: float = 1.38,
        assume_subset: bool = True,
        batch: bool = True,
    ) -> None:
        self.seed = seed
        self.log_u = log_u
        self.gamma = gamma
        self.assume_subset = assume_subset
        #: vectorized candidate inversion in the root search (the one
        #: multi-element stage of a single-sketch decode); batch=False
        #: keeps the scalar per-candidate loop for cross-checking
        self.batch = batch

    def capacity_for(self, d_hat: int, exact: bool) -> int:
        """``t``: exact d when known, else the conservative 1.38 inflation."""
        if exact:
            return max(1, d_hat)
        return max(1, math.ceil(self.gamma * d_hat))

    def run(
        self,
        set_a,
        set_b,
        channel: Channel | None = None,
        true_d: int | None = None,
        estimated_d: int | None = None,
    ) -> ReconciliationResult:
        """Unidirectional reconciliation; Alice learns A xor B."""
        channel = channel if channel is not None else Channel()
        if estimated_d is not None:
            t = self.capacity_for(estimated_d, exact=False)
        else:
            t = self.capacity_for(true_d or 1, exact=True)
        field = field_for(self.log_u)
        codec = BCHCodec(field, t)

        arr_a = _as_element_array(set_a, self.log_u)
        arr_b = _as_element_array(set_b, self.log_u)

        encode_start = time.perf_counter()
        sketch_b = codec.sketch(arr_b)
        writer = BitWriter()
        for s in sketch_b:
            writer.write(s, self.log_u)
        writer.write(set_checksum(arr_b, self.log_u), self.log_u)
        wire = writer.getvalue()
        sketch_a = codec.sketch(arr_a)
        encode_s = time.perf_counter() - encode_start

        channel.send(Direction.BOB_TO_ALICE, wire, round_no=1, label="syndromes")

        decode_start = time.perf_counter()
        delta = codec.sketch_xor(sketch_a, sketch_b)
        candidates = arr_a if self.assume_subset else None
        try:
            elements = codec.decode(
                delta, candidates=candidates, seed=self.seed, batch=self.batch
            )
            difference = frozenset(elements)
            # The checksum doubles as end-to-end verification (cheap, and
            # the same gatekeeper PBS uses).
            recovered = np.setxor1d(
                arr_a, np.array(sorted(difference), dtype=np.uint64)
            )
            success = set_checksum(recovered, self.log_u) == set_checksum(
                arr_b, self.log_u
            )
        except DecodeFailure:
            success = False
            difference = frozenset()
        decode_s = time.perf_counter() - decode_start

        return ReconciliationResult(
            success=success,
            difference=difference,
            rounds=1,
            channel=channel,
            encode_s=encode_s,
            decode_s=decode_s,
            extra={"t": t},
        )
