"""Plain Bloom filter (vectorized), the helper structure of Graphene.

Standard construction: ``m = -n ln(fpr) / ln(2)^2`` bits and
``k = (m/n) ln 2`` hash functions give the requested false-positive rate
at capacity n [Bloom, 1970].
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.hashing.families import SaltedHash
from repro.utils.seeds import derive_seed


@dataclass
class BloomFilter:
    """Fixed-size Bloom filter over integer elements.

    >>> import numpy as np
    >>> bf = BloomFilter.for_capacity(100, fpr=0.01, seed=1)
    >>> bf.insert_many(np.array([5, 6], dtype=np.uint64))
    >>> bool(bf.contains_many(np.array([5], dtype=np.uint64))[0])
    True
    """

    n_bits: int
    n_hashes: int
    seed: int = 0
    bits: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_bits < 1 or self.n_hashes < 1:
            raise ParameterError("BloomFilter needs >= 1 bit and >= 1 hash")
        self.bits = np.zeros(self.n_bits, dtype=bool)
        self._hashes = [
            SaltedHash(derive_seed(self.seed, "bloom", i))
            for i in range(self.n_hashes)
        ]

    @classmethod
    def for_capacity(cls, capacity: int, fpr: float, seed: int = 0) -> "BloomFilter":
        """Size the filter for ``capacity`` items at false-positive rate ``fpr``."""
        if not 0.0 < fpr < 1.0:
            raise ParameterError(f"fpr must be in (0, 1), got {fpr}")
        capacity = max(1, capacity)
        n_bits = max(8, math.ceil(-capacity * math.log(fpr) / (math.log(2) ** 2)))
        n_hashes = max(1, round(n_bits / capacity * math.log(2)))
        return cls(n_bits=n_bits, n_hashes=n_hashes, seed=seed)

    def insert_many(self, values: np.ndarray) -> None:
        """Set the k bits of every element."""
        values = np.asarray(values, dtype=np.uint64)
        if len(values) == 0:
            return
        for h in self._hashes:
            self.bits[h.bucket_vec(values, self.n_bits)] = True

    def contains_many(self, values: np.ndarray) -> np.ndarray:
        """Membership test for a batch; boolean array (may have false positives)."""
        values = np.asarray(values, dtype=np.uint64)
        if len(values) == 0:
            return np.zeros(0, dtype=bool)
        out = np.ones(len(values), dtype=bool)
        for h in self._hashes:
            out &= self.bits[h.bucket_vec(values, self.n_bits)]
        return out

    def wire_bytes(self) -> int:
        """Serialized size: the bit array."""
        return (self.n_bits + 7) // 8

    def serialize(self) -> bytes:
        """Pack the bit array."""
        return np.packbits(self.bits).tobytes()
