"""The cluster layer: sharded, durable storage behind the service.

Pieces (bottom up):

* :mod:`repro.cluster.ring` — consistent-hash ring mapping set names to
  shards with minimal movement on resize;
* :mod:`repro.cluster.journal` — per-shard append-only apply-diff
  journal with checksummed records and atomic snapshot compaction;
* :mod:`repro.cluster.router` — :class:`ClusterStore`, the async sharded
  facade the server consults (one asyncio worker task per shard, each
  owning a :class:`~repro.service.store.SetStore` and its journal);
* :mod:`repro.cluster.admission` — per-shard session/decode caps that
  shed overload with the service's RETRY frame.
"""

from repro.cluster.admission import (
    DEFAULT_RETRY_AFTER_S,
    AdmissionController,
    retry_delay,
)
from repro.cluster.journal import (
    JournalCorruptError,
    Record,
    ShardStorage,
    encode_create,
    encode_diff,
    read_records,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.router import ClusterStore

__all__ = [
    "AdmissionController",
    "ClusterStore",
    "DEFAULT_RETRY_AFTER_S",
    "DEFAULT_VNODES",
    "HashRing",
    "JournalCorruptError",
    "Record",
    "ShardStorage",
    "encode_create",
    "encode_diff",
    "read_records",
    "retry_delay",
]
