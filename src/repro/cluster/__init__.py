"""The cluster layer: sharded, durable storage behind the service.

Pieces (bottom up):

* :mod:`repro.cluster.ring` — consistent-hash ring mapping set names to
  shards with minimal movement on resize (``diff`` computes the move
  plan between two layouts);
* :mod:`repro.cluster.storage` — the :class:`StorageBackend` contract:
  what it means to persist one shard (durable-before-visible ordering,
  iteration, staging, compaction), plus the shared mutation protocol
  both executors route through;
* :mod:`repro.cluster.journal` — :class:`JournalBackend`: per-shard
  append-only apply-diff journal with checksummed records and atomic
  snapshot compaction (epoch-qualified file names, offline replay
  helpers) — the in-RAM backend;
* :mod:`repro.cluster.sqlite` — :class:`SqliteBackend`: one WAL-mode
  SQLite file per shard with lazily materialized sets — the
  bigger-than-RAM backend (``repro serve --storage sqlite``);
* :mod:`repro.cluster.manifest` — the committed layout of a data
  directory (shard count, vnodes, layout epoch, storage backend);
  startup refuses a topology *or storage* mismatch instead of silently
  recovering sets empty;
* :mod:`repro.cluster.rebalance` — offline resize / backend conversion:
  replay through the committed backend, stage under the next epoch
  through the new one, commit via one atomic manifest replace
  (crash-safe, idempotent);
* :mod:`repro.cluster.config` — :class:`ClusterConfig` +
  :func:`open_cluster`, the front door that replaced the keyword
  sprawl on ``ClusterStore(...)``;
* :mod:`repro.cluster.router` — :class:`ClusterStore`, the async sharded
  facade the server consults (one worker per shard, each owning a
  :class:`~repro.service.store.SetStore` and its storage backend), with
  a live drain-and-swap :meth:`~ClusterStore.resize`;
* :mod:`repro.cluster.proc` — the ``subprocess`` shard executor: shard
  workers as child processes speaking the service framing as an
  internal RPC, so BCH decode CPU scales across cores
  (``repro serve --workers proc``);
* :mod:`repro.cluster.replication` — per-shard follower replicas fed by
  logical-op log shipping with optional quorum acks
  (``repro serve --replicas R --replication quorum``), durable replica
  cursors, and cursor-based follower promotion when a primary stays
  down;
* :mod:`repro.cluster.admission` — per-shard session/decode caps that
  shed overload with the service's RETRY frame.
"""

from repro.cluster.admission import (
    DEFAULT_RETRY_AFTER_S,
    AdmissionController,
    retry_delay,
)
from repro.cluster.config import (
    CONFIG_FIELDS,
    EXECUTORS,
    REPLICATION_MODES,
    ClusterConfig,
    open_cluster,
)
from repro.cluster.journal import (
    JournalBackend,
    JournalCorruptError,
    Record,
    encode_create,
    encode_diff,
    journal_filename,
    read_records,
    replay_shard,
    snapshot_filename,
    write_snapshot,
)
from repro.cluster.manifest import (
    MANIFEST_NAME,
    ClusterManifest,
    ManifestError,
    StorageMismatchError,
    TopologyMismatchError,
    load_manifest,
    write_manifest,
)
from repro.cluster.proc import (
    DEFAULT_RESTART_BACKOFF_S,
    WorkerSupervisor,
    WorkerUnavailableError,
    fork_safe_cpu_count,
)
from repro.cluster.rebalance import (
    RebalanceAborted,
    RebalanceResult,
    rebalance,
)
from repro.cluster.replication import (
    QuorumTimeoutError,
    ReplicationError,
    ShardReplication,
    elect_replica,
    probe_replica,
    quorum_size,
    read_cursor,
    write_cursor,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.router import ClusterStore
from repro.cluster.sqlite import SqliteBackend
from repro.cluster.storage import (
    BACKEND_NAMES,
    StorageBackend,
    StorageCorruptError,
    backend_class,
    open_backend,
)

__all__ = [
    "AdmissionController",
    "BACKEND_NAMES",
    "CONFIG_FIELDS",
    "ClusterConfig",
    "ClusterManifest",
    "ClusterStore",
    "DEFAULT_RESTART_BACKOFF_S",
    "DEFAULT_RETRY_AFTER_S",
    "DEFAULT_VNODES",
    "EXECUTORS",
    "HashRing",
    "JournalBackend",
    "JournalCorruptError",
    "MANIFEST_NAME",
    "ManifestError",
    "QuorumTimeoutError",
    "REPLICATION_MODES",
    "RebalanceAborted",
    "RebalanceResult",
    "Record",
    "ReplicationError",
    "ShardReplication",
    "ShardStorage",
    "SqliteBackend",
    "StorageBackend",
    "StorageCorruptError",
    "StorageMismatchError",
    "TopologyMismatchError",
    "WorkerSupervisor",
    "WorkerUnavailableError",
    "backend_class",
    "elect_replica",
    "encode_create",
    "encode_diff",
    "fork_safe_cpu_count",
    "journal_filename",
    "load_manifest",
    "open_backend",
    "open_cluster",
    "probe_replica",
    "quorum_size",
    "read_cursor",
    "read_records",
    "rebalance",
    "replay_shard",
    "retry_delay",
    "snapshot_filename",
    "write_cursor",
    "write_manifest",
    "write_snapshot",
]


def __getattr__(name: str):
    # Pre-PR-6 import path for the journal backend; kept working with a
    # deprecation nudge toward the backend-neutral name.
    if name == "ShardStorage":
        import warnings

        warnings.warn(
            "repro.cluster.ShardStorage is deprecated; use "
            "repro.cluster.JournalBackend (or open_backend('journal', ...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return JournalBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
