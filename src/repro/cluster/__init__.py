"""The cluster layer: sharded, durable storage behind the service.

Pieces (bottom up):

* :mod:`repro.cluster.ring` — consistent-hash ring mapping set names to
  shards with minimal movement on resize (``diff`` computes the move
  plan between two layouts);
* :mod:`repro.cluster.journal` — per-shard append-only apply-diff
  journal with checksummed records and atomic snapshot compaction
  (epoch-qualified file names, offline replay helpers);
* :mod:`repro.cluster.manifest` — the committed layout of a data
  directory (shard count, vnodes, layout epoch); startup refuses a
  topology mismatch instead of silently remapping sets;
* :mod:`repro.cluster.rebalance` — offline journaled resize: replay,
  stage moved sets under the next epoch, commit via one atomic manifest
  replace (crash-safe, idempotent);
* :mod:`repro.cluster.router` — :class:`ClusterStore`, the async sharded
  facade the server consults (one worker per shard, each owning a
  :class:`~repro.service.store.SetStore` and its journal), with a live
  drain-and-swap :meth:`~ClusterStore.resize`;
* :mod:`repro.cluster.proc` — the ``subprocess`` shard executor: shard
  workers as child processes speaking the service framing as an
  internal RPC, so BCH decode CPU scales across cores
  (``repro serve --workers proc``);
* :mod:`repro.cluster.admission` — per-shard session/decode caps that
  shed overload with the service's RETRY frame.
"""

from repro.cluster.admission import (
    DEFAULT_RETRY_AFTER_S,
    AdmissionController,
    retry_delay,
)
from repro.cluster.journal import (
    JournalCorruptError,
    Record,
    ShardStorage,
    encode_create,
    encode_diff,
    journal_filename,
    read_records,
    replay_shard,
    snapshot_filename,
    write_snapshot,
)
from repro.cluster.manifest import (
    MANIFEST_NAME,
    ClusterManifest,
    ManifestError,
    TopologyMismatchError,
    load_manifest,
    write_manifest,
)
from repro.cluster.proc import (
    DEFAULT_RESTART_BACKOFF_S,
    WorkerSupervisor,
    WorkerUnavailableError,
    fork_safe_cpu_count,
)
from repro.cluster.rebalance import (
    RebalanceAborted,
    RebalanceResult,
    rebalance,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.router import ClusterStore

__all__ = [
    "AdmissionController",
    "ClusterManifest",
    "ClusterStore",
    "DEFAULT_RESTART_BACKOFF_S",
    "DEFAULT_RETRY_AFTER_S",
    "DEFAULT_VNODES",
    "HashRing",
    "JournalCorruptError",
    "MANIFEST_NAME",
    "ManifestError",
    "RebalanceAborted",
    "RebalanceResult",
    "Record",
    "ShardStorage",
    "TopologyMismatchError",
    "WorkerSupervisor",
    "WorkerUnavailableError",
    "encode_create",
    "encode_diff",
    "fork_safe_cpu_count",
    "journal_filename",
    "load_manifest",
    "read_records",
    "rebalance",
    "replay_shard",
    "retry_delay",
    "snapshot_filename",
    "write_manifest",
    "write_snapshot",
]
