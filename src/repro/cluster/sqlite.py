"""The SQLite storage backend: one WAL-mode database file per shard.

:class:`repro.cluster.journal.JournalBackend` replays every byte into
RAM at open, so shard size is capped by memory — twice in proc mode
(worker + parent mirror).  This backend keeps the durable truth in one
SQLite file per shard (``store.sqlite``, epoch-qualified like the
journal files) and materializes sets **lazily**: the working set, not
the full store, determines RAM.

Why SQLite fits the PR-3 durability contract
--------------------------------------------

* ``PRAGMA journal_mode=WAL`` — writers append to a write-ahead log and
  readers see consistent snapshots; a SIGKILL mid-commit leaves either
  the old state or the new one, never a torn database.  This is the
  same torn-tail tolerance the record journal earned by hand.
* ``PRAGMA synchronous=NORMAL`` (the ``fsync=False`` mapping) — commits
  flush to the WAL without an fsync per transaction; a *process* kill
  loses nothing acknowledged, a *machine* crash can lose the recent
  tail — exactly the journal's ``fsync=False`` posture.  ``fsync=True``
  maps to ``synchronous=FULL`` (fsync on every commit), the journal's
  strict mode.
* ``PRAGMA busy_timeout`` — offline readers (stats tooling, the
  rebalance) briefly share the file with the owner; writers never spin
  on a transient lock.

Sets are versioned rows::

    sets(name TEXT PRIMARY KEY, version INTEGER NOT NULL)
    elements(set_name TEXT, value INTEGER, PRIMARY KEY(set_name, value))

One apply-diff is one transaction (adds inserted, removes deleted, the
version bumped iff any row actually changed) so the durable version
arithmetic is bit-for-bit the in-memory
:meth:`repro.service.store.SetStore.apply_diff` arithmetic — the
cross-backend equivalence the tests assert.  Element values are 64-bit
unsigned; SQLite INTEGERs are signed, so values round-trip through a
two's-complement mapping.

``sqlite3`` connections refuse cross-thread use, so this backend
declares ``concurrent_writes=False``: durable writes happen inline on
the event loop through the store's persistence hook (see
:mod:`repro.cluster.storage`), not on the thread pool.  Compaction is a
``wal_checkpoint(TRUNCATE)`` — it folds the WAL back into the main file
from SQLite's own durable state and never materializes the store.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path

from repro.cluster.journal import COMPACT_FACTOR, COMPACT_MIN_BYTES
from repro.cluster.storage import StorageBackend, StorageCorruptError
from repro.service.store import SetStore, UnknownSetError, _NamedSet

#: Default LRU cap on materialized sets per shard.  Sized for "many
#: small-to-medium sets": the hot working set stays resident, the long
#: tail stays on disk.
DEFAULT_CACHE_SETS = 1024

#: How long a writer waits out a reader's transient lock (ms).
BUSY_TIMEOUT_MS = 5_000

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS meta ("
    " key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS sets ("
    " name TEXT PRIMARY KEY, version INTEGER NOT NULL)",
    "CREATE TABLE IF NOT EXISTS elements ("
    " set_name TEXT NOT NULL, value INTEGER NOT NULL,"
    " PRIMARY KEY (set_name, value)) WITHOUT ROWID",
)


def db_filename(epoch: int = 0) -> str:
    """The database file name for a layout epoch (0 = bare name)."""
    return "store.sqlite" if epoch == 0 else f"store-e{epoch}.sqlite"


def _to_signed(value: int) -> int:
    """uint64 element -> SQLite INTEGER (two's complement)."""
    value = int(value)
    return value - (1 << 64) if value >= (1 << 63) else value


def _from_signed(value: int) -> int:
    """SQLite INTEGER -> uint64 element."""
    return value + (1 << 64) if value < 0 else value


class SqliteBackend(StorageBackend):
    """One shard's durable state as a WAL-mode SQLite database.

    Lifecycle mirrors the journal backend: construct (``create=False``
    for read-only offline use — never creates the file), then
    :meth:`open_store` for the live owner, ``record_*`` writes, and an
    idempotent :meth:`close`.  All calls must come from the thread that
    constructed the instance (``concurrent_writes=False``)."""

    name = "sqlite"
    concurrent_writes = False
    compact_from_entries = False
    TUNING = frozenset(
        {"fsync", "compact_min_bytes", "compact_factor", "cache_sets"}
    )
    #: every epoch's ``store[-eN].sqlite`` plus the WAL/SHM sidecars
    FILE_PREFIXES = ("store",)

    def __init__(
        self,
        directory: str | Path,
        fsync: bool = False,
        compact_min_bytes: int = COMPACT_MIN_BYTES,
        compact_factor: int = COMPACT_FACTOR,
        cache_sets: int = DEFAULT_CACHE_SETS,
        epoch: int = 0,
        create: bool = True,
    ) -> None:
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.epoch = epoch
        self.db_path = self.directory / db_filename(epoch)
        self.fsync = fsync
        self.compact_min_bytes = compact_min_bytes
        self.compact_factor = compact_factor
        self.cache_sets = cache_sets
        self._conn: sqlite3.Connection | None = None
        # -- counters for stats() (journal-compatible keys) --
        self.records_appended = 0
        self.compactions = 0
        self.recovered_sets = 0
        self.tail_error = ""
        if create or self.db_path.exists():
            self._connect(initialize=create)

    def _connect(self, initialize: bool) -> None:
        try:
            conn = sqlite3.connect(self.db_path)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(
                "PRAGMA synchronous=" + ("FULL" if self.fsync else "NORMAL")
            )
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            if initialize:
                with conn:
                    for stmt in _SCHEMA:
                        conn.execute(stmt)
                    conn.execute(
                        "INSERT OR IGNORE INTO meta (key, value)"
                        " VALUES ('backend', 'sqlite')"
                    )
            self.recovered_sets = conn.execute(
                "SELECT COUNT(*) FROM sets"
            ).fetchone()[0]
        except sqlite3.Error as exc:
            # an unreadable header / missing schema is damage that the
            # atomic staging protocol should have made impossible
            raise StorageCorruptError(f"{self.db_path}: {exc}") from None
        self._conn = conn

    def _require_conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StorageCorruptError(
                f"{self.db_path}: backend is closed or was opened "
                f"read-only on a missing database"
            )
        return self._conn

    # -- StorageBackend protocol ----------------------------------------------
    def open_store(self) -> SetStore:
        """The live store: a lazy, LRU-bounded view over this database."""
        self._require_conn()
        return LazySetStore(self, cache_sets=self.cache_sets)

    def record_create(self, name: str, values, version: int = 0) -> None:
        conn = self._require_conn()
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO sets (name, version) VALUES (?, ?)",
                (name, int(version)),
            )
            conn.execute("DELETE FROM elements WHERE set_name = ?", (name,))
            conn.executemany(
                "INSERT OR IGNORE INTO elements (set_name, value)"
                " VALUES (?, ?)",
                ((name, _to_signed(v)) for v in values),
            )
        self.records_appended += 1

    def record_diff(self, name: str, add=(), remove=()) -> None:
        """One transaction; the version bumps iff a row really changed.

        ``total_changes`` counts exactly the inserts that were not
        already present and the deletes that were — the same quantity
        the in-memory arithmetic calls ``changed``, which is what keeps
        the two version counters in lock-step."""
        conn = self._require_conn()
        with conn:
            row = conn.execute(
                "SELECT 1 FROM sets WHERE name = ?", (name,)
            ).fetchone()
            if row is None:
                # nothing persisted: the open transaction rolls back
                raise UnknownSetError(f"no such set: {name!r}")
            before = conn.total_changes
            conn.executemany(
                "INSERT OR IGNORE INTO elements (set_name, value)"
                " VALUES (?, ?)",
                ((name, _to_signed(v)) for v in add),
            )
            conn.executemany(
                "DELETE FROM elements WHERE set_name = ? AND value = ?",
                ((name, _to_signed(v)) for v in remove),
            )
            if conn.total_changes != before:
                conn.execute(
                    "UPDATE sets SET version = version + 1 WHERE name = ?",
                    (name,),
                )
        self.records_appended += 1

    def iter_sets(self):
        """``(name, values, version)`` straight from the database,
        sorted by name, one set materialized at a time."""
        conn = self._conn
        if conn is None:
            return
        for name, version in conn.execute(
            "SELECT name, version FROM sets ORDER BY name"
        ).fetchall():
            values = frozenset(
                _from_signed(v)
                for (v,) in conn.execute(
                    "SELECT value FROM elements WHERE set_name = ?", (name,)
                )
            )
            yield name, values, int(version)

    # -- lazy-store support ----------------------------------------------------
    def has_set(self, name: str) -> bool:
        conn = self._conn
        if conn is None:
            return False
        return (
            conn.execute(
                "SELECT 1 FROM sets WHERE name = ?", (name,)
            ).fetchone()
            is not None
        )

    def set_names(self) -> list[str]:
        conn = self._conn
        if conn is None:
            return []
        return [
            name
            for (name,) in conn.execute(
                "SELECT name FROM sets ORDER BY name"
            )
        ]

    def load_set(self, name: str) -> tuple[set, int] | None:
        """One set's committed ``(values, version)``, or ``None``."""
        conn = self._conn
        if conn is None:
            return None
        row = conn.execute(
            "SELECT version FROM sets WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            return None
        values = {
            _from_signed(v)
            for (v,) in conn.execute(
                "SELECT value FROM elements WHERE set_name = ?", (name,)
            )
        }
        return values, int(row[0])

    def summary_rows(self) -> list[tuple[str, int, int]]:
        """``(name, size, version)`` for every set without materializing
        any elements (the metrics endpoint at scale)."""
        conn = self._conn
        if conn is None:
            return []
        return [
            (name, int(size), int(version))
            for name, size, version in conn.execute(
                "SELECT s.name, COUNT(e.value), s.version"
                " FROM sets s LEFT JOIN elements e ON e.set_name = s.name"
                " GROUP BY s.name ORDER BY s.name"
            )
        ]

    # -- compaction ------------------------------------------------------------
    def _wal_bytes(self) -> int:
        try:
            return (
                self.db_path.with_name(self.db_path.name + "-wal")
                .stat()
                .st_size
            )
        except OSError:
            return 0

    def _db_bytes(self) -> int:
        try:
            return self.db_path.stat().st_size
        except OSError:
            return 0

    def should_compact(self) -> bool:
        threshold = max(
            self.compact_min_bytes, self.compact_factor * self._db_bytes()
        )
        return self._wal_bytes() > threshold

    def compact(self, entries=None) -> None:
        """Fold the WAL back into the main file (``entries`` unused —
        ``compact_from_entries`` is False, the WAL *is* the log)."""
        conn = self._require_conn()
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self.compactions += 1

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict:
        return {
            "epoch": self.epoch,
            "db_bytes": self._db_bytes(),
            "wal_bytes": self._wal_bytes(),
            "records_appended": self.records_appended,
            "compactions": self.compactions,
            "recovered_sets": self.recovered_sets,
            "tail_error": self.tail_error,
        }

    # -- offline layout (rebalance) -------------------------------------------
    @classmethod
    def data_filenames(cls, epoch: int = 0) -> set:
        base = db_filename(epoch)
        return {base, base + "-wal", base + "-shm"}

    @classmethod
    def stage(cls, directory, entries, epoch: int = 0,
              fsync: bool = True) -> int:
        """Build a complete database in a temp file, fsync, atomically
        install it (and drop any stale WAL sidecars of the target)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / db_filename(epoch)
        tmp_path = path.with_name(path.name + ".tmp")
        if tmp_path.exists():
            tmp_path.unlink()
        conn = sqlite3.connect(tmp_path)
        try:
            # atomicity comes from the final os.replace, not from a
            # rollback journal on the temp file
            conn.execute("PRAGMA journal_mode=OFF")
            conn.execute("PRAGMA synchronous=OFF")
            with conn:
                for stmt in _SCHEMA:
                    conn.execute(stmt)
                conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value)"
                    " VALUES ('backend', 'sqlite')"
                )
                for name, values, version in entries:
                    conn.execute(
                        "INSERT OR REPLACE INTO sets (name, version)"
                        " VALUES (?, ?)",
                        (name, int(version)),
                    )
                    conn.executemany(
                        "INSERT OR IGNORE INTO elements (set_name, value)"
                        " VALUES (?, ?)",
                        ((name, _to_signed(v)) for v in values),
                    )
        finally:
            conn.close()
        with open(tmp_path, "rb") as fh:
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        for suffix in ("-wal", "-shm"):
            side = path.with_name(path.name + suffix)
            if side.exists():
                side.unlink()
        if fsync:
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        return path.stat().st_size


class LazySetStore(SetStore):
    """A :class:`SetStore` whose truth lives in a :class:`SqliteBackend`.

    The ``_sets`` dict becomes a bounded LRU *cache* of materialized
    sets: reads fault a set in from the database on first touch, writes
    go through the inherited persistence hook (durable first, then the
    cached copy), and eviction is always safe because every committed
    mutation is already in the database — an evicted set re-faults
    bit-for-bit.  Only the per-set ``reconciles`` session counter is
    cache-resident (it is not durable under the journal backend either:
    a restart zeroes it there too).

    ``items()`` still materializes everything (the proc executor's READY
    dump and the journal-style compaction path want full listings);
    bigger-than-RAM operation relies on the lazy read path plus the
    WAL-checkpoint compaction, which never calls ``items()``.
    """

    def __init__(self, backend: SqliteBackend,
                 cache_sets: int = DEFAULT_CACHE_SETS) -> None:
        super().__init__(persistence=backend)
        self._backend = backend
        self._cache_sets = max(1, int(cache_sets))
        self.cache_hits = 0
        self.cache_faults = 0
        self.cache_evictions = 0

    # -- LRU plumbing ----------------------------------------------------------
    def _touch(self, name: str) -> None:
        entry = self._sets.pop(name, None)
        if entry is not None:
            self._sets[name] = entry

    def _evict(self) -> None:
        while len(self._sets) > self._cache_sets:
            self._sets.pop(next(iter(self._sets)))
            self.cache_evictions += 1

    def _require(self, name: str) -> _NamedSet:
        entry = self._sets.get(name)
        if entry is not None:
            self.cache_hits += 1
            self._touch(name)
            return entry
        loaded = self._backend.load_set(name)
        if loaded is None:
            raise UnknownSetError(f"no such set: {name!r}")
        values, version = loaded
        entry = _NamedSet(values=values, version=version)
        self._sets[name] = entry
        self.cache_faults += 1
        self._evict()
        return entry

    # -- registry overrides (the database is the registry) ---------------------
    def names(self) -> list[str]:
        return self._backend.set_names()

    def __contains__(self, name: str) -> bool:
        return name in self._sets or self._backend.has_set(name)

    def create(self, name: str, values=(), version: int = 0,
               persisted: bool = False) -> None:
        super().create(name, values, version=version, persisted=persisted)
        self._touch(name)
        self._evict()

    def items(self) -> list[tuple[str, frozenset, int]]:
        return list(self._backend.iter_sets())

    def cache_stats(self) -> dict:
        """LRU effectiveness for the metrics endpoint: a hit rate near 1
        means the working set fits ``cache_sets``; a low rate with high
        evictions means reads are faulting sets back in from SQLite."""
        lookups = self.cache_hits + self.cache_faults
        return {
            "resident": len(self._sets),
            "capacity": self._cache_sets,
            "hits": self.cache_hits,
            "faults": self.cache_faults,
            "evictions": self.cache_evictions,
            "hit_rate": self.cache_hits / lookups if lookups else 1.0,
        }

    def stats(self) -> dict:
        out = {}
        for name, size, version in self._backend.summary_rows():
            entry = self._sets.get(name)
            out[name] = {
                "size": size,
                "version": version,
                "reconciles": entry.reconciles if entry is not None else 0,
            }
        return out
