"""The sharded store: N shard workers behind one async facade.

:class:`ClusterStore` is what ``repro serve --shards N --data-dir DIR``
hands the reconciliation server instead of a bare
:class:`~repro.service.store.SetStore`.  A consistent-hash ring
(:mod:`repro.cluster.ring`) maps every named set to one of N *shard
workers*; each worker owns its own ``SetStore`` and its own
:class:`~repro.cluster.storage.StorageBackend` (the append-only journal
or the WAL-mode SQLite store, chosen by ``ClusterConfig.storage``), and
applies mutations strictly in arrival order.  Two executors decide what
a "worker" physically is:

* ``executor="inline"`` (default) — one asyncio task per shard on the
  server's event loop, fed through a per-shard queue.  Zero extra
  processes; decode CPU is bounded by one core.
* ``executor="subprocess"`` (``repro serve --workers proc``) — one child
  process per shard (:mod:`repro.cluster.proc`), driven over a loopback
  socket speaking the service's frame format as an internal RPC.  The
  parent keeps a read *mirror* of each shard's ``SetStore`` (updated in
  ack order, so reads stay synchronous and versions stay bit-for-bit),
  proxies mutations and BCH decode work to the owning child, and
  respawns-and-replays a worker that dies.  Decode CPU scales across
  cores; each worker batches decode work with its own coalescer.

Either way the cluster keeps its three core properties:

* **Independent progress** — sessions for sets on different shards never
  contend on a store or a journal; only same-shard writes serialize.
  (Reads — snapshots, sizes — are direct synchronous calls against
  event-loop-consistent state: the inline worker's store, or the proc
  executor's mirror.)
* **Durable acks** — an ``apply_diff`` resolves only after the diff's
  journal record is on disk (via the thread-pool executor inline, via
  the child's journal-first apply loop in proc mode), so shard journals
  commit in parallel while the event loop keeps serving.
* **Deterministic recovery** — ``start()`` replays snapshot-then-journal
  per shard; versions are re-derived by replay, so a recovered store is
  bit-for-bit the pre-crash store up to the last complete record.

With the inline executor the server's cross-session
:class:`~repro.service.scheduler.DecodeCoalescer` sits *above* this
layer and batches decode work across all shards; in proc mode each
worker coalesces its own shard's sessions instead (see
:meth:`ClusterStore.decode_remote`).
"""

from __future__ import annotations

import asyncio
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.config import CONFIG_FIELDS, EXECUTORS, ClusterConfig
from repro.cluster.manifest import (
    ClusterManifest,
    load_or_adopt,
    replica_dir,
    write_manifest,
)
from repro.cluster.proc import (
    RpcType,
    WorkerHandle,
    WorkerSupervisor,
    WorkerUnavailableError,
)
from repro.cluster.rebalance import RebalanceResult, rebalance
from repro.cluster.replication import (
    InlineApplier,
    ProcApplier,
    ReplicationError,
    ShardReplication,
    elect_replica,
    has_data,
    probe_replica,
    read_cursor,
)
from repro.cluster.ring import HashRing
from repro.cluster.storage import (
    StorageBackend,
    apply_mutation,
    compact_if_due,
    open_backend,
)
from repro.errors import ReproError
from repro.obs.logs import get_logger
from repro.service.store import SetStore, Snapshot

__all__ = ["EXECUTORS", "ClusterStore"]

log = get_logger("cluster")


@dataclass
class _Shard:
    """One worker's world: a store, optional durability, and a mailbox.

    Inline executor: ``store`` is the shard's authoritative ``SetStore``
    and ``task``/``queue`` drive it.  Subprocess executor: ``store`` is
    the parent's read mirror, ``worker`` is the RPC handle to the child
    that owns the authoritative state and journal.
    """

    shard_id: int
    store: SetStore
    storage: StorageBackend | None
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    task: asyncio.Task | None = None
    applies: int = 0
    creates: int = 0
    compact_error: str = ""       #: last failed background compaction
    # -- replication (both executors; requires a data dir) --
    #: the shard's primary-side replication state: ship sequence,
    #: follower drivers, quorum accounting (None = replication off)
    repl: ShardReplication | None = None
    # -- subprocess executor only --
    worker: WorkerHandle | None = None
    restarts: int = 0             #: successful respawns after worker death
    restart_error: str = ""       #: last failed respawn attempt (diagnosis)
    last_storage_stats: dict = field(default_factory=dict)
    last_coalescer_stats: dict = field(default_factory=dict)
    #: the child's latest cumulative histogram dump (rides every ack;
    #: latest-wins, merged by :func:`repro.service.metrics.
    #: merged_histograms` into the server-wide latency view)
    last_obs: dict = field(default_factory=dict)


class ClusterStore:
    """Sharded, journaled set store with ``SetStore``-compatible semantics.

    Mutations (:meth:`apply_diff`, :meth:`create`, and the create-missing
    path of :meth:`snapshot`) are coroutines — they resolve after the
    owning shard worker has applied *and journaled* the change.  Reads
    are plain synchronous methods, like ``SetStore``'s.

    ``executor`` picks where the shard workers run — ``"inline"``
    (asyncio tasks; default) or ``"subprocess"`` (one child process per
    shard: decode CPU scales across cores, workers are respawned on
    death, and :meth:`decode_remote` / :meth:`shard_available` become
    live).  Both executors expose identical semantics and identical
    on-disk formats; a data dir written by one recovers under the other.

    >>> # inside a coroutine:
    >>> # store = ClusterStore(shards=4, data_dir="data",
    >>> #                      executor="subprocess")
    >>> # await store.start()
    >>> # await store.apply_diff("inv", add=[1, 2, 3])
    """

    def __init__(
        self,
        shards: int | None = None,
        data_dir: str | Path | None = None,
        vnodes: int | None = None,
        fsync: bool | None = None,
        compact_min_bytes: int | None = None,
        compact_factor: int | None = None,
        executor: str | None = None,
        worker_window_s: float | None = None,
        worker_coalesce: bool | None = None,
        restart_backoff_s: float | None = None,
        *,
        storage: str | None = None,
        cache_sets: int | None = None,
        config: ClusterConfig | None = None,
    ) -> None:
        """Prefer ``ClusterStore(data_dir, config=ClusterConfig(...))``
        (or the :func:`repro.cluster.open_cluster` factory).  The
        pre-PR-6 keyword spelling — every knob as its own argument —
        still works but emits :class:`DeprecationWarning`; ``data_dir``
        itself is not deprecated (it names *which* durable state, not
        *how* the cluster behaves, so it never joined the config).
        """
        legacy = {
            key: value
            for key, value in (
                ("shards", shards),
                ("vnodes", vnodes),
                ("storage", storage),
                ("fsync", fsync),
                ("compact_min_bytes", compact_min_bytes),
                ("compact_factor", compact_factor),
                ("cache_sets", cache_sets),
                ("executor", executor),
                ("worker_window_s", worker_window_s),
                ("worker_coalesce", worker_coalesce),
                ("restart_backoff_s", restart_backoff_s),
            )
            if value is not None
        }
        assert set(CONFIG_FIELDS) >= set(legacy)
        if config is not None:
            if legacy:
                raise ValueError(
                    "pass either config= or individual cluster keywords, "
                    f"not both (got {sorted(legacy)} alongside config)"
                )
        else:
            if legacy:
                warnings.warn(
                    "constructing ClusterStore from individual keyword "
                    "arguments is deprecated; build a "
                    "repro.cluster.ClusterConfig and call "
                    "open_cluster(data_dir, config) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            config = ClusterConfig(**legacy)
        self.config = config
        self.ring = HashRing(range(config.shards), vnodes=config.vnodes)
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.executor = config.executor
        self.worker_window_s = config.worker_window_s
        self.worker_coalesce = config.worker_coalesce
        self.restart_backoff_s = config.restart_backoff_s
        #: RETRY hint the server sends for sessions hitting a shard whose
        #: worker is down (a restart is usually one backoff away)
        self.unavailable_retry_after_s = config.restart_backoff_s
        self._storage_kwargs = config.storage_kwargs()
        self._shards = [
            _Shard(shard_id=i, store=SetStore(), storage=None)
            for i in range(config.shards)
        ]
        #: the committed layout (set by :meth:`start` when journaling)
        self.manifest: ClusterManifest | None = None
        self._started = False
        self._closing = False
        self._close_done: asyncio.Event | None = None
        self._resize_gate: asyncio.Event | None = None
        self._supervisor: WorkerSupervisor | None = None
        self._restart_tasks: set[asyncio.Task] = set()
        if config.executor != "subprocess":
            # shadow the method: consumers feature-test with
            # getattr(store, "decode_remote", None) and the inline
            # executor has no remote decode surface
            self.decode_remote = None
        # -- resize counters (cluster_stats / metrics) --
        self.resizes = 0
        self.sets_moved = 0

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Recover every shard from disk and start the worker tasks.

        With a data dir, the directory's manifest is checked first: a
        shard/vnode count differing from the committed layout raises
        :class:`~repro.cluster.manifest.TopologyMismatchError` instead of
        silently remapping set names to shards that never journaled them
        (run ``repro rebalance`` — or :meth:`resize` — to migrate).
        Shard storage opens at each shard's committed layout epoch.
        """
        if self._started:
            return
        if self.config.replicas > 0 and self.data_dir is None:
            raise ReproError(
                "replication (replicas > 0) requires a data dir: "
                "followers replicate durable state, and a memory-only "
                "cluster has none"
            )
        if self.data_dir is not None:
            self.manifest = load_or_adopt(
                self.data_dir, len(self._shards), self.ring.vnodes,
                storage=self.config.storage,
            )
            if self.config.replicas > 0 or any(self.manifest.primary_replica):
                # blocking (probes every replica directory): off the loop
                await asyncio.get_running_loop().run_in_executor(
                    None, self._prepare_replication_sync
                )
        if self.executor == "subprocess":
            # _closing drops *before* the spawns: a worker that comes up
            # and dies again inside this window must schedule a restart
            # (the death callback ignores deaths only while closing)
            self._closing = False
            await self._start_proc()
            self._start_replication()
            self._started = True
            self._close_done = None
            return
        try:
            for shard in self._shards:
                # a fresh mailbox every start: a drained queue from a
                # previous close() may still hold stop sentinels
                shard.queue = asyncio.Queue()
                if self.data_dir is not None:
                    shard.storage = open_backend(
                        self.config.storage,
                        self._shard_dir(shard.shard_id),
                        epoch=self.manifest.shard_epoch(shard.shard_id),
                        **self._storage_kwargs,
                    )
                    # recovery defines the state; the returned store is
                    # wired for write-through persistence
                    shard.store = shard.storage.open_store()
                shard.task = asyncio.create_task(
                    self._worker(shard), name=f"shard-{shard.shard_id}"
                )
            self._start_replication()
        except BaseException:
            # partial recovery (e.g. one corrupt shard): unwind the shards
            # already started so nothing leaks a worker task or journal fd
            for shard in self._shards:
                if shard.task is not None:
                    shard.task.cancel()
            await asyncio.gather(
                *(s.task for s in self._shards if s.task is not None),
                return_exceptions=True,
            )
            for shard in self._shards:
                shard.task = None
                if shard.storage is not None:
                    shard.storage.close()
                    shard.storage = None
            raise
        self._started = True
        self._closing = False
        self._close_done = None

    async def close(self) -> None:
        """Drain every worker, flush and close the journals.

        Under the subprocess executor this also reaps every worker
        child: each gets a CLOSE RPC (applying queued mutations and
        closing its journal first) and is then joined — escalating to
        terminate/kill only if it hangs — so no orphan processes or
        stray tmp files survive a graceful shutdown.

        Mutations already queued are applied; anything submitted after
        close() begins is rejected immediately (never silently stranded
        on an unserviced queue).  Idempotent and safe in any state: a
        second (even concurrent) close awaits the first instead of
        double-draining queues or double-closing journal handles, a
        close before :meth:`start` is a no-op, and a close racing a
        :meth:`resize` waits the resize out and then closes the swapped
        store (close never returns while workers may be restarted).
        """
        while self._resize_gate is not None:
            await self._resize_gate.wait()
        await self._drain()

    async def _drain(self) -> None:
        """The close body, minus the resize fence (resize drains through
        here itself — fencing would deadlock on its own gate)."""
        if self._close_done is not None:
            await self._close_done.wait()
            return
        if not self._started:
            return
        self._close_done = asyncio.Event()
        self._closing = True
        try:
            if self.executor == "subprocess":
                await self._close_proc()
            else:
                for shard in self._shards:
                    await shard.queue.put(None)
                for shard in self._shards:
                    if shard.task is not None:
                        await shard.task
                        shard.task = None
                    if shard.storage is not None:
                        # keep the closed storage around: its stats stay
                        # readable after close; start() replaces it anyway
                        shard.storage.close()
                await self._stop_replication()
            self._started = False
        finally:
            self._close_done.set()

    # -- replication -----------------------------------------------------------
    def _prepare_replication_sync(self) -> None:
        """Blocking startup pass (runs in an executor thread): reconcile
        the manifest's replication fields with the config, fail over any
        shard whose active replica directory is unreadable — or blank
        while a follower holds state (a replaced disk comes up empty,
        not corrupt) — and seed each shard's ship cursor above every
        durable cursor on disk, so stale follower cursors from an
        earlier run can never outrank a freshly bootstrapped follower
        at election time."""
        manifest = self.manifest
        changed = False
        # never shrink below a committed promotion target: a manifest
        # that says "shard 2's primary is follower-01" must stay valid
        # even if the operator restarts with --replicas 0
        replicas = max(self.config.replicas, max(manifest.primary_replica))
        if manifest.replicas != replicas:
            manifest.replicas = replicas
            changed = True
        for shard_id in range(manifest.shards):
            epoch = manifest.shard_epoch(shard_id)
            active = manifest.primary_replica[shard_id]
            active_dir = replica_dir(self.data_dir, shard_id, active)
            if self.config.replicas > 0 and (
                not probe_replica(active_dir, epoch, self.config.storage)
                or not has_data(active_dir, epoch, self.config.storage)
            ):
                # the election includes the active replica: if every
                # directory is blank (a brand-new cluster) it wins its
                # own tie and nothing changes, but damage or emptiness
                # loses to any follower with a durable cursor
                elected = elect_replica(
                    self.data_dir, shard_id, epoch, self.config.storage,
                    manifest.replicas,
                )
                if elected != active:
                    log.warning(
                        "startup failover: shard %d primary replica "
                        "%d -> %d", shard_id, active, elected,
                    )
                    manifest.primary_replica[shard_id] = elected
                    changed = True
            floor = manifest.cursors[shard_id]
            for replica in range(manifest.replicas + 1):
                floor = max(floor, read_cursor(
                    replica_dir(self.data_dir, shard_id, replica)
                ))
            if manifest.cursors[shard_id] != floor:
                manifest.cursors[shard_id] = floor
                changed = True
        if changed:
            write_manifest(self.data_dir, manifest)

    def _start_replication(self) -> None:
        """Build and start each shard's follower set (post worker start)."""
        if self.config.replicas < 1 or self.data_dir is None:
            return
        for shard in self._shards:
            self._open_shard_replication(shard)

    def _open_shard_replication(
        self, shard: _Shard, seq0: int | None = None, promotions: int = 0
    ) -> None:
        """Wire one shard's :class:`ShardReplication`: a follower driver
        per non-active replica directory, applied in-process under the
        inline executor and through a worker child (the same token-
        authenticated RPC as primaries) under the subprocess executor."""
        active = self.manifest.primary_replica[shard.shard_id]
        repl = ShardReplication(
            shard_id=shard.shard_id,
            replicas=self.config.replicas,
            mode=self.config.replication,
            # attribute lookup at call time: shard.store is replaced on
            # worker respawn, and bootstraps must snapshot the current one
            entries_fn=lambda s=shard: s.store.items(),
            active_replica=active,
            seq0=(
                self.manifest.cursors[shard.shard_id]
                if seq0 is None else seq0
            ),
            storage_kwargs=self._storage_kwargs,
            backoff_s=self.restart_backoff_s,
        )
        repl.promotions = promotions
        epoch = self._shard_epoch(shard.shard_id)
        for replica in range(self.config.replicas + 1):
            if replica == active:
                continue
            directory = replica_dir(self.data_dir, shard.shard_id, replica)
            if self.executor == "subprocess":
                applier = ProcApplier(
                    self._supervisor, shard.shard_id, directory, epoch,
                    self.config.storage, self._storage_kwargs,
                )
                follower = repl.add_follower(replica, directory, applier)
                applier.on_death = (
                    lambda f=follower: f.mark_dead("follower worker died")
                )
            else:
                repl.add_follower(replica, directory, InlineApplier(
                    directory, epoch, self.config.storage,
                    self._storage_kwargs,
                ))
        shard.repl = repl
        repl.start()

    async def _stop_replication(self) -> None:
        """Stop every follower (draining live queues first) and persist
        the ship cursors in the manifest, so a restarted primary resumes
        numbering above everything it ever shipped."""
        changed = False
        for shard in self._shards:
            repl = shard.repl
            if repl is None:
                continue
            await repl.stop(graceful=True)
            if (
                self.manifest is not None
                and shard.shard_id < len(self.manifest.cursors)
                and self.manifest.cursors[shard.shard_id] != repl.seq
            ):
                self.manifest.cursors[shard.shard_id] = repl.seq
                changed = True
        if changed and self.data_dir is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, write_manifest, self.data_dir, self.manifest,
            )

    async def _promote(self, shard: _Shard) -> bool:
        """Fail one shard over to its most-advanced readable follower.

        Stops the follower set (draining live queues — that maximizes
        the electable cursors), elects offline by durable cursor,
        commits by atomically rewriting ``manifest.primary_replica``
        (the *only* commit point a promotion has), respawns the worker
        on the promoted directory, and rebuilds the follower set — the
        demoted directory rejoins as a follower and is wiped on its
        first bootstrap.  Returns whether the shard came back up; on
        ``False`` the caller keeps retrying (a later pass may promote
        again among the survivors).
        """
        repl = shard.repl
        if repl is None or self.manifest is None or self.data_dir is None:
            return False
        shard.repl = None
        await repl.stop(graceful=True)
        epoch = self._shard_epoch(shard.shard_id)
        old_active = self.manifest.primary_replica[shard.shard_id]
        loop = asyncio.get_running_loop()
        try:
            elected = await loop.run_in_executor(
                None, elect_replica, self.data_dir, shard.shard_id,
                epoch, self.config.storage, self.manifest.replicas,
                frozenset({old_active}),
            )
        except ReplicationError as exc:
            shard.restart_error = f"{type(exc).__name__}: {exc}"
            self._open_shard_replication(
                shard, seq0=repl.seq, promotions=repl.promotions
            )
            return False
        self.manifest.primary_replica[shard.shard_id] = elected
        self.manifest.cursors[shard.shard_id] = repl.seq
        await loop.run_in_executor(
            None, write_manifest, self.data_dir, self.manifest,
        )
        log.warning(
            "promoted shard %d: primary replica %d -> %d (seq %d)",
            shard.shard_id, old_active, elected, repl.seq,
        )
        try:
            handle, entries, stats = await self._supervisor.spawn(
                shard.shard_id,
                self._shard_dir(shard.shard_id),
                epoch,
                self._on_worker_death,
            )
        except Exception as exc:
            shard.restart_error = f"{type(exc).__name__}: {exc}"
            self._open_shard_replication(
                shard, seq0=repl.seq, promotions=repl.promotions + 1
            )
            return False
        shard.store = self._mirror_from(entries)
        shard.worker = handle
        shard.last_storage_stats = dict(stats)
        shard.restarts += 1
        shard.restart_error = ""
        self._open_shard_replication(
            shard, seq0=repl.seq, promotions=repl.promotions + 1
        )
        return True

    # -- subprocess executor lifecycle -----------------------------------------
    def _shard_dir(self, shard_id: int) -> Path | None:
        if self.data_dir is None:
            return None
        replica = (
            self.manifest.primary_replica[shard_id]
            if self.manifest is not None
            else 0
        )
        return replica_dir(self.data_dir, shard_id, replica)

    def _shard_epoch(self, shard_id: int) -> int:
        return (
            self.manifest.shard_epoch(shard_id)
            if self.manifest is not None
            else 0
        )

    @staticmethod
    def _mirror_from(entries) -> SetStore:
        store = SetStore()
        for name, values, version in entries:
            store.create(name, values, version=version)
        return store

    async def _start_proc(self) -> None:
        """Spawn one worker child per shard and seed the read mirrors."""
        supervisor = WorkerSupervisor(
            window_s=self.worker_window_s,
            coalesce=self.worker_coalesce,
            storage=self.config.storage,
            **self._storage_kwargs,
        )
        await supervisor.start()
        self._supervisor = supervisor
        results = await asyncio.gather(
            *[
                supervisor.spawn(
                    shard.shard_id,
                    self._shard_dir(shard.shard_id),
                    self._shard_epoch(shard.shard_id),
                    self._on_worker_death,
                )
                for shard in self._shards
            ],
            return_exceptions=True,
        )
        failure = next(
            (r for r in results if isinstance(r, BaseException)), None
        )
        if failure is not None:
            # partial spawn (e.g. one corrupt shard journal): reap the
            # children that did come up so nothing outlives the error —
            # including any replacement a death-during-start restart
            # may have already installed on a shard
            for result in results:
                if not isinstance(result, BaseException):
                    await result[0].close(graceful=False)
            for shard in self._shards:
                if shard.worker is not None and shard.worker.alive:
                    await shard.worker.close(graceful=False)
            await supervisor.close()
            self._supervisor = None
            raise failure
        for shard, (handle, entries, stats) in zip(self._shards, results):
            if shard.worker is not None and shard.worker.alive:
                # this shard's original worker died during the spawn
                # window and a restart already installed (and seeded the
                # mirror from) a fresh one — keep it, reap the corpse
                await handle.close(graceful=False)
                continue
            shard.store = self._mirror_from(entries)
            shard.worker = handle
            shard.storage = None
            shard.last_storage_stats = dict(stats)

    async def _close_proc(self) -> None:
        """Gracefully stop every worker child and reap the processes."""
        for task in list(self._restart_tasks):
            task.cancel()
        if self._restart_tasks:
            await asyncio.gather(
                *self._restart_tasks, return_exceptions=True
            )
            self._restart_tasks.clear()
        for shard in self._shards:
            if shard.worker is not None:
                stats = await shard.worker.close()
                if stats:
                    # the post-close journal counters stay readable,
                    # like the inline executor's closed ShardStorage
                    shard.last_storage_stats = dict(stats)
        # after the primaries: their final acks have shipped by now, so
        # a graceful follower drain catches everything
        await self._stop_replication()
        if self._supervisor is not None:
            await self._supervisor.close()
            self._supervisor = None

    def _on_worker_death(self, shard_id: int) -> None:
        """Reader-task callback: a worker died unexpectedly — heal it.

        Deliberately *not* gated on ``_started``: a worker that reports
        READY and then dies while the remaining shards are still
        spawning (start() in progress) must heal like any other death,
        or its shard would shed sessions forever.  Only a closing store
        lets deaths lie.
        """
        if self._closing or self._supervisor is None:
            return
        if not 0 <= shard_id < len(self._shards):
            return
        shard = self._shards[shard_id]
        task = asyncio.create_task(
            self._restart_worker(shard), name=f"shard-{shard_id}-restart"
        )
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    async def _restart_worker(self, shard: _Shard) -> None:
        """Respawn a dead worker after a backoff; the child replays its
        journal and the mirror is rebuilt from the replayed state (which
        may include journaled-but-unacked mutations from the crash — the
        standard at-least-once WAL outcome).  With replication on, a
        worker that stays down past ``promote_after`` consecutive failed
        respawns (its directory is gone, not just its process) is failed
        over to the most-advanced follower via :meth:`_promote`."""
        backoff = self.restart_backoff_s
        failures = 0
        while True:
            await asyncio.sleep(backoff)
            if (
                self._closing
                or self._supervisor is None
                or shard not in self._shards       # resized away meanwhile
                or (shard.worker is not None and shard.worker.alive)
            ):
                return
            if shard.worker is not None:
                # reap the condemned handle before its successor opens
                # the same journal: close() terminates the old child if
                # it is somehow still running (a parent-side reader
                # failure, not a real death — two live children must
                # never append to one journal) and releases its socket
                # and process object
                await shard.worker.close(graceful=False)
            try:
                handle, entries, stats = await self._supervisor.spawn(
                    shard.shard_id,
                    self._shard_dir(shard.shard_id),
                    self._shard_epoch(shard.shard_id),
                    self._on_worker_death,
                )
            except Exception as exc:
                # keep trying, but leave the why in cluster_stats — a
                # shard that can never come back (unreplayable journal,
                # spawn failures) must be diagnosable while it sheds
                shard.restart_error = f"{type(exc).__name__}: {exc}"
                backoff = min(backoff * 2, 5.0)
                failures += 1
                if (
                    shard.repl is not None
                    and failures >= self.config.promote_after
                ):
                    if await self._promote(shard):
                        return
                    # promotion did not bring the shard up (no electable
                    # replica, or the promoted spawn failed too); reset
                    # the budget so a later pass may promote again
                    failures = 0
                continue
            if (
                shard.repl is not None
                and shard.repl.seq > 0
                and not entries
                and any(f.acked_seq > 0 for f in shard.repl.followers)
            ):
                # The respawned child recovered *nothing* while a
                # follower holds shipped state: the primary's files were
                # lost outright (a wiped directory or a fully-torn
                # journal recovers empty rather than corrupt, so the
                # spawn "succeeds").  Resyncing followers from this
                # empty mirror would destroy acked data — fail over to
                # the most-advanced follower instead.
                await handle.close(graceful=False)
                shard.restart_error = "respawn recovered empty behind followers"
                if await self._promote(shard):
                    return
                failures = 0
                continue
            shard.store = self._mirror_from(entries)
            shard.worker = handle
            shard.last_storage_stats = dict(stats)
            shard.restarts += 1
            shard.restart_error = ""
            if shard.repl is not None:
                # the replayed journal may contain a mutation that was
                # never acked — so never shipped; the rebuilt mirror is
                # ahead of the ship stream and every follower must
                # resync from a fresh snapshot
                for follower in shard.repl.followers:
                    follower.mark_dead("primary restarted; resyncing")
            return

    def shard_available(self, shard_id: int) -> bool:
        """Is the shard's worker able to take new sessions right now?

        Always true inline; in proc mode false while the shard's child
        is dead or restarting (the server sheds new sessions for it with
        RETRY instead of queueing against a corpse).  A stale shard id
        from before a shrink reports available — admission control owns
        that case.
        """
        if self.executor != "subprocess" or not self._started:
            return True
        if not 0 <= shard_id < len(self._shards):
            return True
        worker = self._shards[shard_id].worker
        return worker is not None and worker.alive

    async def resize(self, shards: int, admission=None) -> dict:
        """Live-resize to ``shards`` shards without losing a byte.

        Drains every shard worker (queued mutations apply and journal
        first; subprocess workers are closed and later respawned under
        the new layout), runs the offline move plan — :func:`rebalance`
        for a journaled store (in an executor, so reads and the event
        loop keep serving while it replays and stages), an in-memory
        redistribution otherwise — then swaps the ring and restarts the
        workers under
        the new layout.  Sessions keep working across the swap: reads
        serve the pre-resize view until the switch, mutations submitted
        during the resize wait behind a gate and then route through the
        new ring, and sessions holding pre-resize snapshots re-route
        their later ``apply_diff`` calls the same way.  If the move plan
        fails, the store reopens under the old layout (the rebalance
        commit is atomic, so disk always holds exactly one valid epoch)
        and the error propagates.

        ``admission`` (the server's per-shard
        :class:`~repro.cluster.admission.AdmissionController`, if any) is
        re-shaped to the new shard count after the swap, so caps apply to
        the new topology immediately.  Returns a summary dict.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not self._started:
            raise ReproError("ClusterStore.start() before resize()")
        if self._closing:
            # a close() is already draining: restarting workers behind
            # its back would hand the caller a "closed" store that is
            # secretly alive (leaked tasks, reopened journal handles)
            raise ReproError("ClusterStore is closing")
        if self._resize_gate is not None:
            raise ReproError("a resize is already in progress")
        old_shards = self.n_shards
        old_ring = self.ring
        old_shard_list = self._shards
        if shards == old_shards:
            return {
                "old_shards": old_shards, "new_shards": shards,
                "moved": 0, "changed": False,
            }
        self._resize_gate = asyncio.Event()
        result: RebalanceResult | None = None
        entries: list[tuple] | None = None
        try:
            await self._drain()
            if self.data_dir is not None:
                fsync = self._storage_kwargs.get("fsync", False)
                result = await asyncio.get_running_loop().run_in_executor(
                    None,
                    lambda: rebalance(
                        self.data_dir, shards, vnodes=old_ring.vnodes,
                        fsync=fsync, storage=self.config.storage,
                    ),
                )
                moved = result.moved_count
            else:
                entries = [
                    (name, values, version)
                    for shard in self._shards
                    for name, values, version in shard.store.items()
                ]
            self.ring = HashRing(range(shards), vnodes=old_ring.vnodes)
            self._shards = [
                _Shard(shard_id=i, store=SetStore(), storage=None)
                for i in range(shards)
            ]
            await self.start()
            if entries is not None:
                moved = 0
                for name, values, version in entries:
                    target = self.ring.lookup(name)
                    if old_ring.lookup(name) != target:
                        moved += 1
                    target_shard = self._shards[target]
                    if target_shard.worker is not None:
                        # proc executor: the child owns the state — push
                        # the versioned create through it (mirror updates
                        # on the ack, like any other mutation)
                        await self._proc_restore(
                            target_shard, name, values, version
                        )
                    else:
                        # repro: ignore[blocking-call-in-async] -- live
                        # resize redistributes in memory on drained
                        # shards; no storage hook is attached here
                        target_shard.store.create(
                            name, values, version=version
                        )
        except BaseException:
            # best-effort rollback: reopen under the old layout (a
            # pre-commit failure left the old manifest current; after a
            # committed rebalance this restart refuses the stale
            # topology, and the store stays closed for the caller).  If
            # the new layout's workers already started (a failure in the
            # restore loop), drain them first — otherwise start() would
            # see _started and silently do nothing, stranding the store
            # half-swapped (and, in proc mode, leaking worker children).
            if self._started:
                try:
                    await self._drain()
                except Exception:
                    pass
            self.ring = old_ring
            self._shards = old_shard_list
            try:
                await self.start()
                if entries is not None and self.executor == "subprocess":
                    # in-memory proc rollback: the respawned children
                    # start empty — push the saved entries back through
                    # them under the old ring
                    for name, values, version in entries:
                        await self._proc_restore(
                            self._shards[old_ring.lookup(name)],
                            name, values, version,
                        )
            except Exception:
                pass
            raise
        finally:
            gate, self._resize_gate = self._resize_gate, None
            gate.set()
        if admission is not None:
            admission.resize(shards)
        self.resizes += 1
        self.sets_moved += moved
        return {
            "old_shards": old_shards,
            "new_shards": shards,
            "moved": moved,
            "changed": True,
            "epoch": self.manifest.epoch if self.manifest is not None else None,
            "rebalance": result.to_dict() if result is not None else None,
        }

    async def __aenter__(self) -> "ClusterStore":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- routing ---------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_for(self, name: str) -> int:
        """Which shard owns ``name`` (the server's routing hook)."""
        return self.ring.lookup(name)

    def _shard(self, name: str) -> _Shard:
        return self._shards[self.ring.lookup(name)]

    # -- mutations (through the shard worker) ----------------------------------
    @staticmethod
    def _as_elements(values) -> np.ndarray:
        """An owned uint64 array (arrays stay vectorized end to end —
        store merge and journal encode both take the ndarray fast path;
        the copy means callers may reuse their buffer after submitting)."""
        if isinstance(values, np.ndarray):
            return values.astype(np.uint64, copy=True)
        return np.fromiter((int(v) for v in values), dtype=np.uint64)

    async def _resize_barrier(self) -> None:
        """Park mutations while a :meth:`resize` swaps the layout.

        No suspension points separate the wait's resolution from the
        caller's ``_submit`` (single event loop), so a released waiter
        always routes through the fully-swapped ring.
        """
        while self._resize_gate is not None:
            await self._resize_gate.wait()

    async def apply_diff(self, name: str, add=(), remove=(),
                         trace=None) -> int:
        """Merge a completed session's diff; durable before it resolves.

        ``trace`` (the session's span context, if any) parents the
        storage-commit span — across the RPC boundary in proc mode, so
        the commit appears inside the session's trace tree even though
        it runs in the worker child.
        """
        await self._resize_barrier()
        return await self._submit(
            self._shard(name), "apply", name,
            self._as_elements(add), self._as_elements(remove),
            trace=trace,
        )

    async def create(self, name: str, values=(), trace=None) -> None:
        """Create (or replace) a named set, journaled as full state."""
        await self._resize_barrier()
        await self._submit(
            self._shard(name), "create", name, self._as_elements(values),
            trace=trace,
        )

    async def flush(self) -> None:
        """Barrier: resolves after every queued mutation has been applied."""
        await self._resize_barrier()
        await asyncio.gather(
            *[self._submit(shard, "sync") for shard in self._shards]
        )

    async def snapshot(self, name: str, create_missing: bool = False) -> Snapshot:
        """Freeze one set for a session (creating it, durably, if asked)."""
        await self._resize_barrier()
        shard = self._shard(name)
        if name not in shard.store:
            if not create_missing:
                # raises UnknownSetError with the standard message
                return shard.store.snapshot(name, create_missing=False)
            await self._submit(shard, "create", name, ())
        return shard.store.snapshot(name)

    def _submit(self, shard: _Shard, op: str, *args, trace=None):
        """Route one mutation to the shard's worker; returns an awaitable
        (a queue-backed future inline, a coroutine in proc mode)."""
        if not self._started:
            raise ReproError("ClusterStore.start() before use")
        if self._closing:
            raise ReproError("ClusterStore is closing")
        if self.executor == "subprocess":
            return self._proc_submit(shard, op, args, trace)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        shard.queue.put_nowait((op, args, future, trace))
        return future

    @staticmethod
    def _ack(shard: _Shard, body) -> None:
        """Fold one mutation ack's stats riders into the shard entry."""
        shard.last_storage_stats = body[1] or shard.last_storage_stats
        shard.last_obs = body[2] or shard.last_obs

    async def _proc_submit(self, shard: _Shard, op: str, args, trace=None):
        """One mutation RPC to the shard's child, mirror updated on ack.

        The mirror callback runs in the worker handle's reader task, in
        reply order — which is the child's apply order — so the mirror's
        contents and versions track the child's bit-for-bit.  Mutation
        bodies are ``(args, trace)`` pairs: the span context (as a plain
        id tuple) rides to the child, whose storage-commit span then
        joins the session's trace tree.
        """
        worker = shard.worker
        if worker is None or not worker.alive:
            raise WorkerUnavailableError(
                f"shard {shard.shard_id} worker is down (restarting)"
            )
        # capture the repl for the whole RPC: ship and quorum wait must
        # hit the same object even if a promotion swaps shard.repl
        repl = shard.repl
        trace_t = tuple(trace) if trace is not None else None
        if op == "apply":
            name, add, remove = args
            shipped: list[int] = []

            def on_apply(body):
                shard.store.apply_diff(name, add=add, remove=remove)
                shard.applies += 1
                self._ack(shard, body)
                # inside the reader callback = synchronously with the
                # child's durable ack, in ack order — the ship stream
                # and bootstrap_source() stay consistent (empty diffs
                # are not persisted by the child, so not shipped)
                if repl is not None and (len(add) or len(remove)):
                    shipped.append(
                        repl.ship("apply", (name, add, remove))
                    )

            result = (await worker.call(
                RpcType.APPLY, ((name, add, remove), trace_t),
                on_ok=on_apply,
            ))[0]
            if shipped:
                await repl.wait_durable(shipped[0])
            return result
        if op == "create":
            (name, values) = args
            shipped = []

            def on_create(body):
                shard.store.create(name, values)
                shard.creates += 1
                self._ack(shard, body)
                if repl is not None:
                    shipped.append(repl.ship("create", (name, values, 0)))

            await worker.call(
                RpcType.CREATE, ((name, values, 0), trace_t),
                on_ok=on_create,
            )
            if shipped:
                await repl.wait_durable(shipped[0])
            return None
        await worker.call(RpcType.SYNC, (None, None))   # "sync" barrier
        return None

    async def _proc_restore(self, shard: _Shard, name, values, version) -> None:
        """Versioned create through the child (in-memory resize path)."""
        repl = shard.repl
        shipped: list[int] = []

        def on_restore(body):
            shard.store.create(name, values, version=version)
            self._ack(shard, body)
            if repl is not None:
                shipped.append(
                    repl.ship("restore", (name, values, version))
                )

        await shard.worker.call(
            RpcType.RESTORE, ((name, values, version), None),
            on_ok=on_restore,
        )
        if shipped:
            await repl.wait_durable(shipped[0])

    async def decode_remote(self, shard_id: int, codec, deltas, trace=None):
        """Decode sketch deltas on the shard's worker process (proc mode).

        The server routes each session's BCH decode work here instead of
        its own in-process coalescer, so decode CPU runs on the worker's
        core; the worker's own :class:`DecodeCoalescer` still merges
        submissions from concurrent sessions of that shard into shared
        ``decode_many`` batches.  Returns the same ``(decoded, seconds)``
        contract as :meth:`DecodeCoalescer.decode`.  Raises
        :class:`~repro.cluster.proc.WorkerUnavailableError` while the
        worker is dead or the shard id predates a shrink — the session
        fails and the client retries under the new conditions.
        """
        if self.executor != "subprocess":
            raise ReproError("decode_remote requires the subprocess executor")
        await self._resize_barrier()
        if not 0 <= shard_id < len(self._shards):
            raise WorkerUnavailableError(
                f"shard {shard_id} no longer exists (cluster resized)"
            )
        shard = self._shards[shard_id]
        worker = shard.worker
        if worker is None or not worker.alive:
            raise WorkerUnavailableError(
                f"shard {shard_id} worker is down (restarting)"
            )
        trace_t = tuple(trace) if trace is not None else None
        decoded, share, stats, obs = await worker.call(
            RpcType.DECODE, (codec.field.m, codec.t, deltas, trace_t)
        )
        shard.last_coalescer_stats = stats
        shard.last_obs = obs or shard.last_obs
        return decoded, share

    async def _worker(self, shard: _Shard) -> None:
        """Apply this shard's mutations in order (inline executor).

        The durable-first protocol itself — raise-before-persist,
        empty-diff skip, persist-then-mutate, compaction charging — is
        :func:`repro.cluster.storage.apply_mutation` /
        :func:`~repro.cluster.storage.compact_if_due`, shared verbatim
        with the subprocess executor's child loop so the two executors
        cannot drift apart.
        """
        while True:
            item = await shard.queue.get()
            if item is None:
                # fail anything that raced past the _closing gate rather
                # than stranding its future (a hung session) forever
                while not shard.queue.empty():
                    raced = shard.queue.get_nowait()
                    if raced is not None and not raced[2].done():
                        raced[2].set_exception(
                            ReproError("ClusterStore closed")
                        )
                return
            op, args, future, trace = item
            try:
                if op == "create":
                    args = (*args, 0)   # public creates journal version 0
                result = await apply_mutation(
                    shard.store, shard.storage, op, args, trace=trace
                )
                if op == "apply":
                    shard.applies += 1
                elif op == "create":
                    shard.creates += 1
                # ship synchronously with the durable apply — no await
                # between apply_mutation resolving and ship(), so
                # bootstrap_source() snapshots are consistent by
                # construction; ship exactly what was persisted (empty
                # diffs were not, sync barriers carry nothing)
                seq = None
                if shard.repl is not None and (
                    op in ("create", "restore")
                    or (op == "apply" and (len(args[1]) or len(args[2])))
                ):
                    seq = shard.repl.ship(op, args)
                compact_error = await compact_if_due(
                    shard.store, shard.storage
                )
                if compact_error is not None:
                    shard.compact_error = compact_error
                if seq is not None:
                    # quorum mode blocks here until a majority of
                    # replicas is durable; async mode returns at once
                    await shard.repl.wait_durable(seq)
                if not future.done():
                    future.set_result(result)
            except Exception as exc:  # surfaced to the awaiting session
                if not future.done():
                    future.set_exception(exc)

    # -- reads (synchronous, event-loop consistent) ----------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._shard(name).store

    def names(self) -> list[str]:
        out: list[str] = []
        for shard in self._shards:
            out.extend(shard.store.names())
        return sorted(out)

    def get(self, name: str) -> set[int]:
        return self._shard(name).store.get(name)

    def size(self, name: str) -> int:
        return self._shard(name).store.size(name)

    def version(self, name: str) -> int:
        return self._shard(name).store.version(name)

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict:
        """Per-set summary (the ``SetStore.stats`` shape, plus the shard)."""
        out: dict = {}
        for shard in self._shards:
            for name, entry in shard.store.stats().items():
                entry["shard"] = shard.shard_id
                out[name] = entry
        return dict(sorted(out.items()))

    def cluster_stats(self) -> dict:
        """Shard-level summary for metrics: load, queues, journal health.

        In proc mode each shard entry additionally carries a ``worker``
        block (pid, liveness, restart count — how crash recovery
        surfaces in metrics) and, once decode work has flowed, the
        worker-local ``coalescer`` counters; journal stats come from the
        child's last acknowledgement.
        """
        out = {
            "shards": self.n_shards,
            "executor": self.executor,
            "layout": (
                self.manifest.to_dict() if self.manifest is not None else None
            ),
            "resizes": self.resizes,
            "sets_moved": self.sets_moved,
            "worker_restarts": sum(s.restarts for s in self._shards),
            "per_shard": [self._shard_stats(shard) for shard in self._shards],
        }
        repls = [s.repl for s in self._shards if s.repl is not None]
        if repls:
            out["replication"] = {
                "replicas": self.config.replicas,
                "mode": self.config.replication,
                "promotions": sum(r.promotions for r in repls),
                "quorum_ok": all(r.quorum_ok() for r in repls),
            }
        return out

    def _shard_stats(self, shard: _Shard) -> dict:
        entry = {
            "shard": shard.shard_id,
            "sets": len(shard.store.names()),
            "elements": sum(
                shard.store.size(n) for n in shard.store.names()
            ),
            "applies": shard.applies,
            "creates": shard.creates,
            "compact_error": shard.compact_error,
            "queue_depth": shard.queue.qsize(),
        }
        if self.executor == "subprocess":
            entry["worker"] = {
                "pid": shard.worker.pid if shard.worker is not None else None,
                "alive": bool(shard.worker is not None
                              and shard.worker.alive),
                "restarts": shard.restarts,
                "restart_error": shard.restart_error,
                "death_reason": (
                    shard.worker.death_reason
                    if shard.worker is not None
                    else ""
                ),
            }
            entry.update(shard.last_storage_stats)
            if shard.last_coalescer_stats:
                entry["coalescer"] = shard.last_coalescer_stats
            if shard.last_obs:
                entry["obs"] = shard.last_obs
        elif shard.storage is not None:
            entry.update(shard.storage.stats())
        if shard.repl is not None:
            entry["replication"] = shard.repl.stats()
        if hasattr(shard.store, "cache_stats"):
            # inline SQLite shard: the LazySetStore's LRU hit rate (in
            # proc mode the child ships it inside last_storage_stats)
            entry["set_cache"] = shard.store.cache_stats()
        return entry
