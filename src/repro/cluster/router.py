"""The sharded store: N shard workers behind one async facade.

:class:`ClusterStore` is what ``repro serve --shards N --data-dir DIR``
hands the reconciliation server instead of a bare
:class:`~repro.service.store.SetStore`.  A consistent-hash ring
(:mod:`repro.cluster.ring`) maps every named set to one of N *shard
workers*; each worker is an asyncio task owning its own ``SetStore`` and
its own :class:`~repro.cluster.journal.ShardStorage` (journal +
snapshot), and applies mutations strictly in arrival order through a
per-shard queue.  That gives the three properties the cluster needs:

* **Independent progress** — sessions for sets on different shards never
  contend on a store or a journal; only same-shard writes serialize.
  (Reads — snapshots, sizes — are direct synchronous calls: on one event
  loop a worker mutates its ``SetStore`` atomically between awaits, so a
  reader can never observe a half-applied diff.)
* **Durable acks** — an ``apply_diff`` future resolves only after the
  diff's journal record is on disk (written via the executor, so shard
  journals commit in parallel while the event loop keeps serving).
* **Deterministic recovery** — ``start()`` replays snapshot-then-journal
  per shard; versions are re-derived by replay, so a recovered store is
  bit-for-bit the pre-crash store up to the last complete record.

The server's cross-session :class:`~repro.service.scheduler.DecodeCoalescer`
sits *above* this layer and is deliberately not sharded: decode work from
sessions on different shards still merges into shared BCH batches.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.journal import ShardStorage, encode_create, encode_diff
from repro.cluster.manifest import ClusterManifest, load_or_adopt, shard_dirname
from repro.cluster.rebalance import RebalanceResult, rebalance
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.errors import ReproError
from repro.service.store import SetStore, Snapshot


@dataclass
class _Shard:
    """One worker's world: a store, optional durability, and a mailbox."""

    shard_id: int
    store: SetStore
    storage: ShardStorage | None
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    task: asyncio.Task | None = None
    applies: int = 0
    creates: int = 0
    compact_error: str = ""       #: last failed background compaction


class ClusterStore:
    """Sharded, journaled set store with ``SetStore``-compatible semantics.

    Mutations (:meth:`apply_diff`, :meth:`create`, and the create-missing
    path of :meth:`snapshot`) are coroutines — they resolve after the
    owning shard worker has applied *and journaled* the change.  Reads
    are plain synchronous methods, like ``SetStore``'s.

    >>> # inside a coroutine:
    >>> # store = ClusterStore(shards=4, data_dir="data")
    >>> # await store.start()
    >>> # await store.apply_diff("inv", add=[1, 2, 3])
    """

    def __init__(
        self,
        shards: int = 1,
        data_dir: str | Path | None = None,
        vnodes: int = DEFAULT_VNODES,
        fsync: bool = False,
        compact_min_bytes: int | None = None,
        compact_factor: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.ring = HashRing(range(shards), vnodes=vnodes)
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self._storage_kwargs = {"fsync": fsync}
        if compact_min_bytes is not None:
            self._storage_kwargs["compact_min_bytes"] = compact_min_bytes
        if compact_factor is not None:
            self._storage_kwargs["compact_factor"] = compact_factor
        self._shards = [
            _Shard(shard_id=i, store=SetStore(), storage=None)
            for i in range(shards)
        ]
        #: the committed layout (set by :meth:`start` when journaling)
        self.manifest: ClusterManifest | None = None
        self._started = False
        self._closing = False
        self._close_done: asyncio.Event | None = None
        self._resize_gate: asyncio.Event | None = None
        # -- resize counters (cluster_stats / metrics) --
        self.resizes = 0
        self.sets_moved = 0

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Recover every shard from disk and start the worker tasks.

        With a data dir, the directory's manifest is checked first: a
        shard/vnode count differing from the committed layout raises
        :class:`~repro.cluster.manifest.TopologyMismatchError` instead of
        silently remapping set names to shards that never journaled them
        (run ``repro rebalance`` — or :meth:`resize` — to migrate).
        Shard storage opens at each shard's committed layout epoch.
        """
        if self._started:
            return
        if self.data_dir is not None:
            self.manifest = load_or_adopt(
                self.data_dir, len(self._shards), self.ring.vnodes
            )
        try:
            for shard in self._shards:
                # a fresh mailbox every start: a drained queue from a
                # previous close() may still hold stop sentinels
                shard.queue = asyncio.Queue()
                if self.data_dir is not None:
                    shard.store = SetStore()   # replay defines the state
                    shard.storage = ShardStorage(
                        self.data_dir / shard_dirname(shard.shard_id),
                        epoch=self.manifest.shard_epoch(shard.shard_id),
                        **self._storage_kwargs,
                    )
                    shard.storage.recover(shard.store)
                shard.task = asyncio.create_task(
                    self._worker(shard), name=f"shard-{shard.shard_id}"
                )
        except BaseException:
            # partial recovery (e.g. one corrupt shard): unwind the shards
            # already started so nothing leaks a worker task or journal fd
            for shard in self._shards:
                if shard.task is not None:
                    shard.task.cancel()
            await asyncio.gather(
                *(s.task for s in self._shards if s.task is not None),
                return_exceptions=True,
            )
            for shard in self._shards:
                shard.task = None
                if shard.storage is not None:
                    shard.storage.close()
                    shard.storage = None
            raise
        self._started = True
        self._closing = False
        self._close_done = None

    async def close(self) -> None:
        """Drain every worker, flush and close the journals.

        Mutations already queued are applied; anything submitted after
        close() begins is rejected immediately (never silently stranded
        on an unserviced queue).  Idempotent and safe in any state: a
        second (even concurrent) close awaits the first instead of
        double-draining queues or double-closing journal handles, a
        close before :meth:`start` is a no-op, and a close racing a
        :meth:`resize` waits the resize out and then closes the swapped
        store (close never returns while workers may be restarted).
        """
        while self._resize_gate is not None:
            await self._resize_gate.wait()
        await self._drain()

    async def _drain(self) -> None:
        """The close body, minus the resize fence (resize drains through
        here itself — fencing would deadlock on its own gate)."""
        if self._close_done is not None:
            await self._close_done.wait()
            return
        if not self._started:
            return
        self._close_done = asyncio.Event()
        self._closing = True
        try:
            for shard in self._shards:
                await shard.queue.put(None)
            for shard in self._shards:
                if shard.task is not None:
                    await shard.task
                    shard.task = None
                if shard.storage is not None:
                    # keep the closed storage around: its stats stay
                    # readable after close; start() replaces it anyway
                    shard.storage.close()
            self._started = False
        finally:
            self._close_done.set()

    async def resize(self, shards: int, admission=None) -> dict:
        """Live-resize to ``shards`` shards without losing a byte.

        Drains every shard worker (queued mutations apply and journal
        first), runs the offline move plan — :func:`rebalance` for a
        journaled store (in an executor, so reads and the event loop keep
        serving while it replays and stages), an in-memory redistribution
        otherwise — then swaps the ring and restarts the workers under
        the new layout.  Sessions keep working across the swap: reads
        serve the pre-resize view until the switch, mutations submitted
        during the resize wait behind a gate and then route through the
        new ring, and sessions holding pre-resize snapshots re-route
        their later ``apply_diff`` calls the same way.  If the move plan
        fails, the store reopens under the old layout (the rebalance
        commit is atomic, so disk always holds exactly one valid epoch)
        and the error propagates.

        ``admission`` (the server's per-shard
        :class:`~repro.cluster.admission.AdmissionController`, if any) is
        re-shaped to the new shard count after the swap, so caps apply to
        the new topology immediately.  Returns a summary dict.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if not self._started:
            raise ReproError("ClusterStore.start() before resize()")
        if self._closing:
            # a close() is already draining: restarting workers behind
            # its back would hand the caller a "closed" store that is
            # secretly alive (leaked tasks, reopened journal handles)
            raise ReproError("ClusterStore is closing")
        if self._resize_gate is not None:
            raise ReproError("a resize is already in progress")
        old_shards = self.n_shards
        old_ring = self.ring
        old_shard_list = self._shards
        if shards == old_shards:
            return {
                "old_shards": old_shards, "new_shards": shards,
                "moved": 0, "changed": False,
            }
        self._resize_gate = asyncio.Event()
        try:
            await self._drain()
            result: RebalanceResult | None = None
            entries: list[tuple] | None = None
            if self.data_dir is not None:
                fsync = self._storage_kwargs.get("fsync", False)
                result = await asyncio.get_running_loop().run_in_executor(
                    None,
                    lambda: rebalance(
                        self.data_dir, shards, vnodes=old_ring.vnodes,
                        fsync=fsync,
                    ),
                )
                moved = result.moved_count
            else:
                entries = [
                    (name, values, version)
                    for shard in self._shards
                    for name, values, version in shard.store.items()
                ]
            self.ring = HashRing(range(shards), vnodes=old_ring.vnodes)
            self._shards = [
                _Shard(shard_id=i, store=SetStore(), storage=None)
                for i in range(shards)
            ]
            await self.start()
            if entries is not None:
                moved = 0
                for name, values, version in entries:
                    target = self.ring.lookup(name)
                    if old_ring.lookup(name) != target:
                        moved += 1
                    self._shards[target].store.create(
                        name, values, version=version
                    )
        except BaseException:
            # best-effort rollback: reopen under the old layout (a
            # pre-commit failure left the old manifest current; after a
            # committed rebalance this restart refuses the stale
            # topology, and the store stays closed for the caller)
            self.ring = old_ring
            self._shards = old_shard_list
            try:
                await self.start()
            except Exception:
                pass
            raise
        finally:
            gate, self._resize_gate = self._resize_gate, None
            gate.set()
        if admission is not None:
            admission.resize(shards)
        self.resizes += 1
        self.sets_moved += moved
        return {
            "old_shards": old_shards,
            "new_shards": shards,
            "moved": moved,
            "changed": True,
            "epoch": self.manifest.epoch if self.manifest is not None else None,
            "rebalance": result.to_dict() if result is not None else None,
        }

    async def __aenter__(self) -> "ClusterStore":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- routing ---------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_for(self, name: str) -> int:
        """Which shard owns ``name`` (the server's routing hook)."""
        return self.ring.lookup(name)

    def _shard(self, name: str) -> _Shard:
        return self._shards[self.ring.lookup(name)]

    # -- mutations (through the shard worker) ----------------------------------
    @staticmethod
    def _as_elements(values) -> np.ndarray:
        """An owned uint64 array (arrays stay vectorized end to end —
        store merge and journal encode both take the ndarray fast path;
        the copy means callers may reuse their buffer after submitting)."""
        if isinstance(values, np.ndarray):
            return values.astype(np.uint64, copy=True)
        return np.fromiter((int(v) for v in values), dtype=np.uint64)

    async def _resize_barrier(self) -> None:
        """Park mutations while a :meth:`resize` swaps the layout.

        No suspension points separate the wait's resolution from the
        caller's ``_submit`` (single event loop), so a released waiter
        always routes through the fully-swapped ring.
        """
        while self._resize_gate is not None:
            await self._resize_gate.wait()

    async def apply_diff(self, name: str, add=(), remove=()) -> int:
        """Merge a completed session's diff; durable before it resolves."""
        await self._resize_barrier()
        return await self._submit(
            self._shard(name), "apply", name,
            self._as_elements(add), self._as_elements(remove),
        )

    async def create(self, name: str, values=()) -> None:
        """Create (or replace) a named set, journaled as full state."""
        await self._resize_barrier()
        await self._submit(
            self._shard(name), "create", name, self._as_elements(values)
        )

    async def flush(self) -> None:
        """Barrier: resolves after every queued mutation has been applied."""
        await self._resize_barrier()
        await asyncio.gather(
            *[self._submit(shard, "sync") for shard in self._shards]
        )

    async def snapshot(self, name: str, create_missing: bool = False) -> Snapshot:
        """Freeze one set for a session (creating it, durably, if asked)."""
        await self._resize_barrier()
        shard = self._shard(name)
        if name not in shard.store:
            if not create_missing:
                # raises UnknownSetError with the standard message
                return shard.store.snapshot(name, create_missing=False)
            await self._submit(shard, "create", name, ())
        return shard.store.snapshot(name)

    def _submit(self, shard: _Shard, op: str, *args) -> asyncio.Future:
        if not self._started:
            raise ReproError("ClusterStore.start() before use")
        if self._closing:
            raise ReproError("ClusterStore is closing")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        shard.queue.put_nowait((op, args, future))
        return future

    async def _worker(self, shard: _Shard) -> None:
        """Apply this shard's mutations in order, journal-first.

        The record hits the disk *before* the store mutates: a failed
        append leaves the store untouched (the session gets the error,
        nothing un-journaled becomes visible), and no concurrent snapshot
        can ever observe state that a crash-recovery would roll back.  A
        crash between append and mutate merely replays the record — the
        diff is idempotent union/difference arithmetic.
        """
        loop = asyncio.get_running_loop()
        while True:
            item = await shard.queue.get()
            if item is None:
                # fail anything that raced past the _closing gate rather
                # than stranding its future (a hung session) forever
                while not shard.queue.empty():
                    raced = shard.queue.get_nowait()
                    if raced is not None and not raced[2].done():
                        raced[2].set_exception(
                            ReproError("ClusterStore closed")
                        )
                return
            op, args, future = item
            try:
                if op == "apply":
                    name, add, remove = args
                    if name not in shard.store:
                        # raise the store's own error *before* journaling:
                        # a diff record must never precede its CREATE
                        shard.store.apply_diff(name)
                    if shard.storage is not None and (
                        len(add) or len(remove)
                    ):
                        # empty diffs (converged re-sync passes) change
                        # nothing: don't pay a disk write for them
                        record = encode_diff(name, add, remove)
                        await loop.run_in_executor(
                            None, shard.storage.append, record
                        )
                    result = shard.store.apply_diff(name, add=add,
                                                    remove=remove)
                    shard.applies += 1
                elif op == "create":
                    name, values = args
                    if shard.storage is not None:
                        record = encode_create(name, values, version=0)
                        await loop.run_in_executor(
                            None, shard.storage.append, record
                        )
                    shard.store.create(name, values)
                    result = None
                    shard.creates += 1
                else:  # "sync" barrier
                    result = None
                if shard.storage is not None and shard.storage.should_compact():
                    # background maintenance: a failed compaction must not
                    # be charged to the (already durable, already applied)
                    # mutation that happened to trigger it
                    try:
                        entries = shard.store.items()
                        await loop.run_in_executor(
                            None, shard.storage.compact, entries
                        )
                        shard.compact_error = ""
                    except Exception as exc:
                        shard.compact_error = f"{type(exc).__name__}: {exc}"
                if not future.done():
                    future.set_result(result)
            except Exception as exc:  # surfaced to the awaiting session
                if not future.done():
                    future.set_exception(exc)

    # -- reads (synchronous, event-loop consistent) ----------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._shard(name).store

    def names(self) -> list[str]:
        out: list[str] = []
        for shard in self._shards:
            out.extend(shard.store.names())
        return sorted(out)

    def get(self, name: str) -> set[int]:
        return self._shard(name).store.get(name)

    def size(self, name: str) -> int:
        return self._shard(name).store.size(name)

    def version(self, name: str) -> int:
        return self._shard(name).store.version(name)

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict:
        """Per-set summary (the ``SetStore.stats`` shape, plus the shard)."""
        out: dict = {}
        for shard in self._shards:
            for name, entry in shard.store.stats().items():
                entry["shard"] = shard.shard_id
                out[name] = entry
        return dict(sorted(out.items()))

    def cluster_stats(self) -> dict:
        """Shard-level summary for metrics: load, queues, journal health."""
        return {
            "shards": self.n_shards,
            "layout": (
                self.manifest.to_dict() if self.manifest is not None else None
            ),
            "resizes": self.resizes,
            "sets_moved": self.sets_moved,
            "per_shard": [
                {
                    "shard": shard.shard_id,
                    "sets": len(shard.store.names()),
                    "elements": sum(
                        shard.store.size(n) for n in shard.store.names()
                    ),
                    "applies": shard.applies,
                    "creates": shard.creates,
                    "compact_error": shard.compact_error,
                    "queue_depth": shard.queue.qsize(),
                    **(
                        shard.storage.stats()
                        if shard.storage is not None
                        else {}
                    ),
                }
                for shard in self._shards
            ],
        }
