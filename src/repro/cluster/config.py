"""Cluster construction: one config object instead of kwarg sprawl.

``ClusterStore(...)`` had grown nine keyword arguments threaded through
``repro serve``, the rebalance, and every test that builds a cluster —
and PR 6's storage backends would have made it eleven.
:class:`ClusterConfig` gathers every knob that shapes a cluster into a
single validated, frozen dataclass, and :func:`open_cluster` is the
front door::

    from repro.cluster import ClusterConfig, open_cluster

    config = ClusterConfig(shards=4, storage="sqlite", fsync=True)
    async with open_cluster(data_dir, config) as store:
        ...

``data_dir`` stays a positional argument rather than a config field:
the config describes *how* a cluster behaves, the data dir says *which*
durable state it owns — the same config is routinely reused across
directories (tests, benchmarks, blue/green restarts).

The pre-PR-6 keyword constructor still works via a shim on
``ClusterStore`` that emits :class:`DeprecationWarning`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.cluster.proc import DEFAULT_RESTART_BACKOFF_S, DEFAULT_WINDOW_S
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.storage import BACKEND_NAMES

#: Shard executor names: ``inline`` (one asyncio task per shard) or
#: ``subprocess`` (one worker child per shard).
EXECUTORS = ("inline", "subprocess")

#: Replication durability modes: ``async`` ships the log to followers
#: after the primary ack (default), ``quorum`` withholds the ack until
#: a majority of replicas is durable (:mod:`repro.cluster.replication`).
REPLICATION_MODES = ("async", "quorum")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that shapes a :class:`~repro.cluster.router.ClusterStore`.

    Grouped by concern — topology (``shards``, ``vnodes``), storage
    (``storage`` backend name plus the tuning knobs forwarded to it),
    and execution (``executor`` and the worker knobs).  ``None`` tuning
    values mean "the backend's default"."""

    # -- topology --
    shards: int = 1
    vnodes: int = DEFAULT_VNODES
    # -- storage --
    storage: str = "journal"
    fsync: bool = False
    compact_min_bytes: int | None = None
    compact_factor: int | None = None
    #: LRU cap on materialized sets per shard (sqlite backend only)
    cache_sets: int | None = None
    # -- execution --
    executor: str = "inline"
    worker_window_s: float = DEFAULT_WINDOW_S
    worker_coalesce: bool = True
    restart_backoff_s: float = DEFAULT_RESTART_BACKOFF_S
    # -- replication --
    #: follower replicas per shard (0 = replication off; requires a
    #: data dir — replication ships durable state, so there must be
    #: durable state to ship)
    replicas: int = 0
    #: ack durability mode: ``async`` or ``quorum``
    replication: str = "async"
    #: consecutive failed primary-worker respawns before the
    #: supervisor promotes the most-advanced follower (proc executor)
    promote_after: int = 2

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.storage not in BACKEND_NAMES:
            raise ValueError(
                f"unknown storage backend {self.storage!r}; expected one "
                f"of " + ", ".join(BACKEND_NAMES)
            )
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, "
                f"got {self.executor!r}"
            )
        if self.worker_window_s < 0:
            raise ValueError(
                f"worker_window_s must be >= 0, got {self.worker_window_s}"
            )
        if self.restart_backoff_s < 0:
            raise ValueError(
                f"restart_backoff_s must be >= 0, got "
                f"{self.restart_backoff_s}"
            )
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")
        if self.replication not in REPLICATION_MODES:
            raise ValueError(
                f"replication must be one of {REPLICATION_MODES}, "
                f"got {self.replication!r}"
            )
        if self.replication == "quorum" and self.replicas < 1:
            raise ValueError(
                "replication='quorum' needs at least one follower "
                "(replicas >= 1); with no followers a quorum is just "
                "the primary, which is the async mode's guarantee"
            )
        if self.promote_after < 1:
            raise ValueError(
                f"promote_after must be >= 1, got {self.promote_after}"
            )

    def storage_kwargs(self) -> dict:
        """The tuning kwargs for :func:`repro.cluster.storage.open_backend`
        (``None`` values omitted so backend defaults apply)."""
        kwargs = {"fsync": self.fsync}
        for key in ("compact_min_bytes", "compact_factor", "cache_sets"):
            value = getattr(self, key)
            if value is not None:
                kwargs[key] = value
        return kwargs

    def replace(self, **changes) -> "ClusterConfig":
        """A copy with ``changes`` applied (dataclasses.replace, spelled
        as a method so call sites don't import it)."""
        import dataclasses

        return dataclasses.replace(self, **changes)


#: The ClusterConfig field names — the shim in ``ClusterStore.__init__``
#: accepts exactly these as legacy keywords.
CONFIG_FIELDS = tuple(f.name for f in fields(ClusterConfig))


def open_cluster(data_dir=None, config: ClusterConfig | None = None):
    """Build a :class:`~repro.cluster.router.ClusterStore`.

    ``data_dir=None`` is a memory-only cluster.  The store is returned
    un-started; use ``async with`` (or ``await store.start()``) as
    before.  Imports the router lazily so config construction stays
    cheap for tooling."""
    from repro.cluster.router import ClusterStore

    return ClusterStore(data_dir=data_dir, config=config)
