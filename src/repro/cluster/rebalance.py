"""Offline, journaled shard rebalance: resize without losing a byte.

``rebalance(data_dir, shards)`` migrates a cluster directory from its
committed topology (the manifest's) to a new shard count, fixing PR 3's
silent data-loss bug: previously the ring remapped ~1/(N+1) of the set
names on resize while their shard-file bytes stayed in the old shard
directories, so moved sets recovered **empty**.  Since PR 6 the same
procedure also converts between storage backends
(``rebalance(..., storage="sqlite")``): every shard's sets are read
through the committed backend's iterator and staged through the new
backend's writer, so ``journal`` and ``sqlite`` directories migrate in
either direction with versions preserved.

The protocol (all offline — run it against a stopped server, or let
:meth:`ClusterStore.resize` drain the workers first):

1. **Replay** every committed shard directory read-only through the
   committed backend (:meth:`repro.cluster.storage.StorageBackend.iter_sets`)
   into a full ``name -> (values, version, source_shard)`` map.  Torn
   journal tails are skipped, not truncated: the planning pass leaves
   the current layout byte-identical.
2. **Plan** placement under the new ring.  A shard is *affected* when
   its set membership changes (it gains or loses at least one set), it
   is brand new, or the run converts storage backends (every surviving
   shard is then rewritten in the new format); unaffected shards keep
   their files untouched.
3. **Stage** each affected shard's complete new state through the *new*
   backend's :meth:`~repro.cluster.storage.StorageBackend.stage`
   (versions preserved, written atomically under the *next* layout
   epoch's file names, next to the current epoch's files).  Nothing the
   committed manifest references is modified.
4. **Commit** by atomically replacing ``manifest.json`` with the new
   shard count, storage backend, the bumped epoch, and the per-shard
   epoch map.  This is the single commit point: a crash any time before
   it leaves the old epoch fully valid (stale staged files are orphans
   a rerun simply overwrites — the whole procedure is idempotent); a
   crash any time after it leaves the new epoch fully recoverable.
5. **Sweep** (best effort, post-commit): delete files from superseded
   epochs — including the old backend's files after a conversion — and
   shard directories beyond the new count.  A crash here costs only
   disk space; the next rebalance sweeps again.

Shrinking is the same procedure — sets from removed shards are staged
into survivors and the orphaned ``shard-NN`` directories are swept after
commit.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.manifest import (
    ClusterManifest,
    discover_shard_dirs,
    infer_legacy_manifest,
    load_manifest,
    replica_dir,
    shard_dirname,
    write_manifest,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.storage import backend_class
from repro.errors import ReproError


class RebalanceAborted(ReproError):
    """Injected crash point fired (tests / CI drills only)."""


@dataclass
class RebalanceResult:
    """What one rebalance run did (``repro rebalance --json`` prints it)."""

    data_dir: str
    changed: bool
    old_shards: int
    new_shards: int
    old_epoch: int
    new_epoch: int
    vnodes: int
    #: storage backend the directory was committed to before / after
    #: (differing means this run converted the shard files)
    old_storage: str = "journal"
    new_storage: str = "journal"
    sets_total: int = 0
    #: name -> (source_shard, destination_shard) for every physically
    #: moved set
    moved: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: shards whose files were rewritten at the new epoch
    rewritten_shards: list[int] = field(default_factory=list)
    #: orphaned shard directories removed by the post-commit sweep
    removed_dirs: list[str] = field(default_factory=list)
    #: sets found on a shard the old ring would not have routed them to
    #: (e.g. after file surgery); the ones whose new target differs from
    #: where they sit are re-homed by this run like any other move
    healed: int = 0

    @property
    def moved_count(self) -> int:
        return len(self.moved)

    @property
    def converted(self) -> bool:
        return self.old_storage != self.new_storage

    def to_dict(self) -> dict:
        return {
            "data_dir": self.data_dir,
            "changed": self.changed,
            "old_shards": self.old_shards,
            "new_shards": self.new_shards,
            "old_epoch": self.old_epoch,
            "new_epoch": self.new_epoch,
            "vnodes": self.vnodes,
            "old_storage": self.old_storage,
            "new_storage": self.new_storage,
            "sets_total": self.sets_total,
            "moved_count": self.moved_count,
            "moved": {name: list(pair) for name, pair in sorted(self.moved.items())},
            "rewritten_shards": list(self.rewritten_shards),
            "removed_dirs": list(self.removed_dirs),
            "healed": self.healed,
        }

    def summary(self) -> str:
        if not self.changed:
            return (
                f"{self.data_dir}: already at {self.new_shards} shards "
                f"on {self.new_storage} storage (layout epoch "
                f"{self.new_epoch}); nothing to do"
            )
        storage_part = (
            f", storage {self.old_storage} -> {self.new_storage}"
            if self.converted
            else ""
        )
        return (
            f"{self.data_dir}: {self.old_shards} -> {self.new_shards} shards"
            f"{storage_part}, "
            f"layout epoch {self.old_epoch} -> {self.new_epoch}; moved "
            f"{self.moved_count}/{self.sets_total} sets, rewrote shards "
            f"{self.rewritten_shards}"
            + (f", removed {self.removed_dirs}" if self.removed_dirs else "")
        )


def _sweep_stale(data_dir: Path, manifest: ClusterManifest) -> list[str]:
    """Post-commit cleanup: drop files the committed manifest never reads.

    Only our own artifacts are touched — ``snapshot*`` / ``journal*`` /
    ``store*`` files whose (backend, epoch) is not the shard's committed
    one, leftover ``*.tmp`` staging files, and whole ``shard-NN``
    directories beyond the committed shard count.  Best effort by
    design: everything here is invisible to recovery, so a crash
    mid-sweep is merely disk space.
    """
    removed: list[str] = []
    committed = backend_class(manifest.storage)
    for shard in range(manifest.shards):
        directory = data_dir / shard_dirname(shard)
        if not directory.exists():
            continue
        keep = committed.data_filenames(manifest.shard_epoch(shard))
        for entry in directory.iterdir():
            stale = entry.name not in keep and (
                entry.name.startswith(("snapshot", "journal", "store"))
                or entry.name.endswith(".tmp")
            )
            if entry.is_file() and stale:
                entry.unlink(missing_ok=True)
    for shard in discover_shard_dirs(data_dir):
        if shard >= manifest.shards:
            directory = data_dir / shard_dirname(shard)
            shutil.rmtree(directory, ignore_errors=True)
            removed.append(directory.name)
    return removed


def _iter_committed_shard(
    data_dir: Path, shard: int, epoch: int, storage: str, replica: int = 0
):
    """Read-only ``(name, values, version)`` iteration of one committed
    shard directory through its backend; an absent shard (no directory,
    or no backend files at ``epoch``) yields nothing.  ``replica`` is
    the shard's committed active replica — after a failover promotion
    the authoritative files live in a ``follower-KK`` subdirectory, not
    the shard root.  Side-effect free on the directory tree: backends
    open with ``create=False`` and torn journal tails are skipped, not
    truncated."""
    directory = replica_dir(data_dir, shard, replica)
    cls = backend_class(storage)
    if not any((directory / fn).exists() for fn in cls.data_filenames(epoch)):
        return
    backend = cls(directory, epoch=epoch, create=False)
    try:
        yield from backend.iter_sets()
    finally:
        backend.close()


def rebalance(
    data_dir: str | Path,
    shards: int,
    vnodes: int = DEFAULT_VNODES,
    fsync: bool = True,
    crash_at: str | None = None,
    storage: str | None = None,
) -> RebalanceResult:
    """Migrate ``data_dir`` to ``shards`` shards; see the module docstring.

    ``storage=None`` keeps the committed backend; naming one converts
    the shard files to it in the same staged-then-committed pass (a
    conversion rewrites every surviving shard even when the topology is
    unchanged).  Idempotent: rerunning after a crash (or against an
    already-migrated directory) is safe; a no-op run still sweeps stale
    staging files from a previously interrupted attempt.  ``crash_at``
    ("after-stage" | "after-commit") raises :class:`RebalanceAborted` at
    that point — the crash-injection hook the recovery drills use.

    Must not run concurrently with a server holding the same directory
    open (stop it, or use :meth:`ClusterStore.resize`, which drains the
    shard workers and calls this).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if storage is not None:
        backend_class(storage)  # fail fast on an unknown backend name
    data_dir = Path(data_dir)
    if not data_dir.exists():
        # a typo'd path must not be silently mkdir'd into a fresh,
        # empty-but-valid cluster while the real data sits elsewhere
        raise ReproError(
            f"data dir {data_dir} does not exist — nothing to rebalance "
            f"(a new directory is initialized by 'repro serve --data-dir')"
        )
    manifest = load_manifest(data_dir)
    if manifest is None:
        manifest = infer_legacy_manifest(data_dir, vnodes=vnodes)
        if manifest is not None:
            # commit the inferred legacy topology to disk *before* any
            # staging: staging creates new shard-NN directories, and a
            # crash would otherwise leave them to inflate the next run's
            # inference into a bogus wider epoch-0 layout whose new
            # shards recover empty — the exact loss this module fixes
            write_manifest(data_dir, manifest, fsync=fsync)
    if manifest is None:
        # a fresh directory: nothing to migrate, just commit the layout
        new_storage = storage or "journal"
        manifest = ClusterManifest(
            shards=shards, vnodes=vnodes, epoch=0, storage=new_storage
        )
        write_manifest(data_dir, manifest, fsync=fsync)
        return RebalanceResult(
            data_dir=str(data_dir), changed=False,
            old_shards=shards, new_shards=shards,
            old_epoch=0, new_epoch=0, vnodes=vnodes,
            old_storage=new_storage, new_storage=new_storage,
        )
    old_storage = manifest.storage
    new_storage = storage or old_storage
    converting = new_storage != old_storage
    if manifest.shards == shards and manifest.vnodes == vnodes \
            and not converting:
        # already there — but a crashed earlier attempt may have left
        # staged files behind; sweep them so they cannot outlive epochs
        removed = _sweep_stale(data_dir, manifest)
        write_manifest(data_dir, manifest, fsync=fsync)  # adopt legacy dirs
        return RebalanceResult(
            data_dir=str(data_dir), changed=False,
            old_shards=manifest.shards, new_shards=shards,
            old_epoch=manifest.epoch, new_epoch=manifest.epoch,
            vnodes=vnodes, old_storage=old_storage,
            new_storage=new_storage, removed_dirs=removed,
        )

    old_ring = HashRing(range(manifest.shards), vnodes=manifest.vnodes)
    new_ring = HashRing(range(shards), vnodes=vnodes)

    # 1. replay: the full committed state, and where each set lives now,
    # read through the backend the manifest is committed to
    states: dict[str, tuple] = {}      # name -> (values, version)
    location: dict[str, int] = {}      # name -> source shard
    for source in range(manifest.shards):
        for name, values, version in _iter_committed_shard(
            data_dir, source, manifest.shard_epoch(source), old_storage,
            replica=manifest.primary_replica[source],
        ):
            if name in location:
                raise ReproError(
                    f"{data_dir}: set {name!r} found on both shard "
                    f"{location[name]} and shard {source}; refusing to "
                    f"guess — repair the shard files first"
                )
            states[name] = (values, version)
            location[name] = source

    # 2. plan: physical moves come from where sets actually live, so a
    # rebalance also re-homes sets stranded off-ring by past surgery.
    # One ring lookup per name per ring (a salted SHA-256 each) — the
    # target map is reused by the staging pass below.
    targets = new_ring.assignments(states)
    old_assign = old_ring.assignments(states)
    moved = {
        name: (location[name], targets[name])
        for name in states
        if location[name] != targets[name]
    }
    # sets sitting on a shard the old ring would never have routed them
    # to (file surgery, an interrupted pre-manifest migration) — counted
    # for the operator's report; those whose target differs are in
    # `moved` and get re-homed by this run
    healed = sum(
        1 for name in states if location[name] != old_assign[name]
    )
    affected = {src for src, _ in moved.values()} | {
        dst for _, dst in moved.values()
    }
    affected.update(range(manifest.shards, shards))   # brand-new shards
    if converting:
        # every surviving shard's files are rewritten in the new format
        affected.update(range(shards))
    # a shard served from a promoted follower directory is rewritten at
    # its root: the new manifest resets every primary back to replica 0,
    # so the authoritative bytes must move there in the same commit
    affected.update(
        shard
        for shard in range(min(manifest.shards, shards))
        if manifest.primary_replica[shard] != 0
    )

    # 3. stage: complete new state per affected surviving shard, written
    # by the *new* backend under the next epoch's file names (the
    # committed epoch reads none of it)
    new_epoch = manifest.epoch + 1
    rewritten = sorted(shard for shard in affected if shard < shards)
    entries_by_shard: dict[int, list] = {shard: [] for shard in rewritten}
    for name in sorted(states):
        if targets[name] in entries_by_shard:
            values, version = states[name]
            entries_by_shard[targets[name]].append((name, values, version))
    stager = backend_class(new_storage)
    for shard in rewritten:
        stager.stage(
            data_dir / shard_dirname(shard), entries_by_shard[shard],
            epoch=new_epoch, fsync=fsync,
        )
    if crash_at == "after-stage":
        raise RebalanceAborted("injected crash after staging, before commit")

    # 4. commit: one atomic manifest replace
    new_manifest = ClusterManifest(
        shards=shards,
        vnodes=vnodes,
        epoch=new_epoch,
        shard_epochs=[
            new_epoch if shard in affected else manifest.shard_epoch(shard)
            for shard in range(shards)
        ],
        storage=new_storage,
        # replication survives the resize: the replica count carries
        # over, every primary returns to its shard root (promoted data
        # was staged there above), and surviving shards keep their ship
        # cursors so sequence numbering stays monotonic
        replicas=manifest.replicas,
        cursors=[
            manifest.cursors[shard] if shard < manifest.shards else 0
            for shard in range(shards)
        ],
    )
    write_manifest(data_dir, new_manifest, fsync=fsync)
    if crash_at == "after-commit":
        raise RebalanceAborted("injected crash after commit, before sweep")

    # 5. sweep superseded epochs (and, after a conversion, the old
    # backend's files) plus orphaned shard directories
    removed = _sweep_stale(data_dir, new_manifest)
    return RebalanceResult(
        data_dir=str(data_dir), changed=True,
        old_shards=manifest.shards, new_shards=shards,
        old_epoch=manifest.epoch, new_epoch=new_epoch, vnodes=vnodes,
        old_storage=old_storage, new_storage=new_storage,
        sets_total=len(states), moved=moved,
        rewritten_shards=rewritten, removed_dirs=removed, healed=healed,
    )
