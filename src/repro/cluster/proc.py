"""Subprocess shard executors: one OS process per shard worker.

The inline executor (:mod:`repro.cluster.router`'s default) runs every
shard worker as an asyncio task on the server's event loop — correct,
simple, and bounded by **one core**: PR 1's batched BCH decode engine
saturates a single CPU no matter how many shards are configured.  This
module is the ``subprocess`` executor: each shard worker becomes a child
process that owns the shard's :class:`~repro.service.store.SetStore` and
:class:`~repro.cluster.storage.StorageBackend` (journal files or the
SQLite store, per the cluster config) for
its shard directory, and the router proxies mutations *and decode work*
to it over a local socket speaking the service's own length-prefixed
framing (:mod:`repro.service.wire`) as an internal RPC.  Decode CPU then
scales across cores: every worker runs its own
:class:`~repro.service.scheduler.DecodeCoalescer`, so sessions routed to
the same shard still merge into shared BCH batches *within* that worker.

Topology of one proc-mode cluster::

    parent (server process)                     children (one per shard)
    ┌────────────────────────────┐   loopback   ┌───────────────────────┐
    │ ClusterStore               │   socket     │ worker_main(shard 0)  │
    │  ├─ mirror SetStore / shard│<───framing──>│  SetStore + journal   │
    │  ├─ WorkerHandle / shard ──┼──────────────│  DecodeCoalescer      │
    │  └─ WorkerSupervisor       │<───framing──>│ worker_main(shard 1)  │
    └────────────────────────────┘              └───────────────────────┘

Design decisions, in the order they matter:

* **Durable before ack, still.**  A mutation RPC is answered only after
  the child's journal append returned (the child runs the same
  journal-first apply loop as the inline worker), so a RESULT frame to a
  reconciliation client keeps implying the diff is on disk.
* **Reads stay synchronous.**  The parent keeps a *mirror*
  ``SetStore`` per shard, updated from each mutation's acknowledgement
  in ack order — so snapshots, sizes, and versions are served without
  an RPC round trip, and mirror versions are bit-for-bit the child's
  (both sides run the identical, deterministic ``SetStore`` arithmetic
  in the identical order).  The mirror is rebuilt from the child's
  recovery dump whenever a worker (re)starts.
* **Crash containment.**  A worker death fails only its own in-flight
  RPCs; the supervisor respawns it after a backoff, the child replays
  snapshot-then-journal, and the parent rebuilds the mirror from the
  replayed state.  While a shard is down, new sessions for it are shed
  with RETRY (see ``ReconciliationServer``) and restarts are counted in
  ``cluster_stats``.  A mutation that was journaled but not yet acked
  when the worker died simply reappears after replay — the standard
  at-least-once WAL story.
* **Same trust domain.**  Workers are children of the server process:
  the RPC listener binds to 127.0.0.1 and every child must present a
  per-supervisor random token in its first frame before anything else
  is processed.  Payloads after authentication are pickled — exactly
  the trust model of :mod:`multiprocessing`'s own pipes.

Processes are started with the ``spawn`` method: the parent runs an
asyncio loop and executor threads (journal appends), and forking a
threaded interpreter is a deadlock lottery.  Children ignore SIGINT
(terminal Ctrl-C goes to the whole process group; shutdown is the
parent's CLOSE RPC, which flushes and closes the journal first) and
exit on EOF when the parent dies, so a killed server leaves no orphans.
"""

from __future__ import annotations

import asyncio
import enum
import os
import pickle
import secrets
import signal
import struct
import sys
import time
from dataclasses import dataclass

from repro.bch.codec import BCHCodec
from repro.cluster.storage import (
    StorageBackend,
    apply_mutation,
    compact_if_due,
    open_backend,
)
from repro.errors import ReproError
from repro.gf import field_for
from repro.obs.logs import (
    configure_logging,
    logging_config,
    set_slow_op_threshold,
    slow_op_threshold_s,
)
from repro.obs.metrics import REGISTRY, WORKER_RPC
from repro.obs.trace import TraceContext, configure_tracing, tracer
from repro.service.scheduler import DEFAULT_WINDOW_S, DecodeCoalescer
from repro.service.store import SetStore
from repro.service.wire import encode_frame, read_frame

#: How long the parent waits for a spawned child to connect back and
#: authenticate before declaring the spawn failed (numpy import plus
#: journal replay; generous because CI machines are slow).
SPAWN_TIMEOUT_S = 60.0

#: Default pause before respawning a dead worker.  Long enough that a
#: crash-looping shard does not busy-spin fork+replay, short enough that
#: a one-off kill heals within a client retry backoff or two.
DEFAULT_RESTART_BACKOFF_S = 0.25

#: How long a graceful close waits for a child to exit after CLOSE was
#: acknowledged, before escalating to terminate/kill.
JOIN_TIMEOUT_S = 10.0

_RID = struct.Struct("!I")

#: Frame-body cap for the internal RPC.  Same-host, token-authenticated
#: traffic between a server and its own children: a recovered shard's
#: READY state dump (or a large diff) may far exceed the client
#: protocol's abuse cap, so the RPC allows up to the length field's
#: practical limit.  Shards bigger than this need the worker-side
#: snapshot-read follow-on (ROADMAP) before proc mode can carry them.
RPC_MAX_FRAME_BYTES = (1 << 31) - 1


class RpcType(enum.IntEnum):
    """Discriminator byte of one internal-RPC frame (disjoint from the
    client protocol's :class:`~repro.service.wire.FrameType` values so a
    frame from the wrong socket can never be mistaken for valid)."""

    READY = 32      #: child -> parent: token + recovered state dump
    APPLY = 33      #: parent -> child: journal + apply one diff
    CREATE = 34     #: parent -> child: journal + create one set
    RESTORE = 35    #: parent -> child: create at an explicit version
    SYNC = 36       #: parent -> child: mutation-queue barrier
    DECODE = 37     #: parent -> child: BCH-decode sketch deltas
    CLOSE = 39      #: parent -> child: drain, close journal, exit
    OK = 40         #: child -> parent: success reply
    ERR = 41        #: child -> parent: failure reply


class WorkerUnavailableError(ReproError):
    """The shard's worker process is dead or restarting; retry shortly."""


def _pack(rid: int, body) -> bytes:
    return _RID.pack(rid) + pickle.dumps(body, pickle.HIGHEST_PROTOCOL)


def _unpack(payload: bytes) -> tuple[int, object]:
    (rid,) = _RID.unpack_from(payload)
    return rid, pickle.loads(payload[_RID.size :])


@dataclass
class WorkerConfig:
    """Everything a spawned child needs, as plain picklable fields."""

    shard_id: int
    port: int                  #: parent's loopback RPC listener
    token: bytes               #: supervisor secret the child must present
    generation: int            #: spawn counter (stale children don't match)
    shard_dir: str | None      #: storage directory (None = in-memory shard)
    epoch: int = 0             #: layout epoch of the shard's files
    storage: str = "journal"   #: storage backend name (see cluster.storage)
    fsync: bool = False
    compact_min_bytes: int | None = None
    compact_factor: int | None = None
    cache_sets: int | None = None   #: sqlite backend's LRU cap
    #: worker-local decode-coalescer window (the service default)
    window_s: float = DEFAULT_WINDOW_S
    coalesce: bool = True      #: False = decode each session separately
    batch: bool = True         #: forwarded to decode_many
    #: distinguishes replica children ("follower-01") from primaries
    #: ("") in process names and trace roles
    role: str = ""
    # -- observability, replicated from the parent process at spawn --
    log_level: str = "info"
    log_json: bool = False
    slow_op_s: float | None = None   #: slow-op WARNING threshold
    trace_dir: str | None = None     #: span JSONL directory (None = off)
    trace_max_bytes: int | None = None   #: span-file rotation cap


# -- the child process ---------------------------------------------------------

def worker_main(config: WorkerConfig) -> None:
    """Entry point of one shard worker child (multiprocessing target)."""
    # Ctrl-C in a terminal signals the whole foreground process group;
    # shutdown must stay the parent's CLOSE RPC so the journal is closed
    # after the last acked append, never mid-mutation.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # replicate the parent's observability posture: same log format and
    # slow-op threshold, spans into the same trace dir under this
    # worker's own role (one JSONL file per process)
    configure_logging(config.log_level, config.log_json)
    if config.slow_op_s is not None:
        set_slow_op_threshold(config.slow_op_s)
    if config.trace_dir:
        role = f"worker-{config.shard_id}"
        if config.role:
            role = f"{role}-{config.role}"
        configure_tracing(
            config.trace_dir, role=role,
            max_bytes=config.trace_max_bytes,
        )
    try:
        asyncio.run(_worker_async(config))
    except (ConnectionError, EOFError, asyncio.IncompleteReadError):
        # parent vanished mid-exchange; recovery already has everything
        # the parent acked, so a quiet exit is the correct behavior
        pass


async def _worker_async(cfg: WorkerConfig) -> None:
    storage: StorageBackend | None = None
    if cfg.shard_dir is not None:
        kwargs = {"fsync": cfg.fsync}
        if cfg.compact_min_bytes is not None:
            kwargs["compact_min_bytes"] = cfg.compact_min_bytes
        if cfg.compact_factor is not None:
            kwargs["compact_factor"] = cfg.compact_factor
        if cfg.cache_sets is not None:
            kwargs["cache_sets"] = cfg.cache_sets
        storage = open_backend(
            cfg.storage, cfg.shard_dir, epoch=cfg.epoch, **kwargs
        )
        store = storage.open_store()
    else:
        store = SetStore()
    reader, writer = await asyncio.open_connection("127.0.0.1", cfg.port)
    worker = _Worker(cfg, store, storage, reader, writer)
    try:
        await worker.run()
    finally:
        if storage is not None:
            storage.close()
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _Worker:
    """The child's event loop: ordered mutations, concurrent decodes."""

    def __init__(self, cfg, store, storage, reader, writer) -> None:
        self.cfg = cfg
        self.store = store
        self.storage = storage
        self.reader = reader
        self.writer = writer
        self.coalescer = DecodeCoalescer(
            window_s=cfg.window_s, enabled=cfg.coalesce, batch=cfg.batch
        )
        self.compact_error = ""
        self._codecs: dict[tuple[int, int], BCHCodec] = {}
        self._mutations: asyncio.Queue = asyncio.Queue()
        self._decodes: set[asyncio.Task] = set()
        self._write_lock = asyncio.Lock()
        self._closing = False

    async def run(self) -> None:
        # the raw 32-byte token leads the READY payload so the parent
        # can authenticate on plain bytes *before* unpickling anything
        ready = self.cfg.token + _pack(
            0,
            (self.cfg.shard_id, self.cfg.generation,
             self.store.items(), self._stats()),
        )
        async with self._write_lock:
            self.writer.write(
                encode_frame(RpcType.READY, ready,
                             max_bytes=RPC_MAX_FRAME_BYTES)
            )
            await self.writer.drain()
        mutation_task = asyncio.create_task(self._mutation_loop())
        try:
            while not self._closing:
                try:
                    ftype, payload = await read_frame(
                        self.reader, frame_enum=RpcType,
                        max_bytes=RPC_MAX_FRAME_BYTES,
                    )
                except (asyncio.IncompleteReadError, ConnectionError):
                    break   # parent went away: flush and exit
                rid, body = _unpack(payload)
                if ftype is RpcType.DECODE:
                    task = asyncio.create_task(self._handle_decode(rid, body))
                    self._decodes.add(task)
                    task.add_done_callback(self._decodes.discard)
                else:
                    self._mutations.put_nowait((ftype, rid, body))
                    if ftype is RpcType.CLOSE:
                        self._closing = True
        finally:
            await self._mutations.put(None)
            await mutation_task
            if self._decodes:
                await asyncio.gather(*self._decodes, return_exceptions=True)

    # -- plumbing --------------------------------------------------------------
    async def _send(self, ftype: RpcType, rid: int, body) -> None:
        async with self._write_lock:
            self.writer.write(
                encode_frame(ftype, _pack(rid, body),
                             max_bytes=RPC_MAX_FRAME_BYTES)
            )
            await self.writer.drain()

    async def _reply_ok(self, rid: int, body) -> None:
        await self._send(RpcType.OK, rid, body)

    async def _reply_err(self, rid: int, exc: Exception) -> None:
        try:
            body = pickle.dumps(exc)    # probe: is it picklable at all?
            del body
            await self._send(RpcType.ERR, rid, exc)
        except Exception:
            await self._send(
                RpcType.ERR, rid, ReproError(f"{type(exc).__name__}: {exc}")
            )

    def _stats(self) -> dict:
        out = self.storage.stats() if self.storage is not None else {}
        out["compact_error"] = self.compact_error
        if hasattr(self.store, "cache_stats"):
            # the SQLite backend's LazySetStore: LRU residency/hit-rate
            out["set_cache"] = self.store.cache_stats()
        return out

    # -- mutations (strictly ordered, journal-first) ---------------------------

    #: RPC frame type -> the shared-protocol op it carries
    _MUTATION_OPS = {
        RpcType.APPLY: "apply",
        RpcType.CREATE: "create",
        RpcType.RESTORE: "restore",
        RpcType.SYNC: "sync",
    }

    async def _mutation_loop(self) -> None:
        """Apply mutations in arrival order via the *shared*
        durable-first protocol (:func:`repro.cluster.storage.
        apply_mutation` — the same code the inline executor runs, so the
        executors stay bit-for-bit interchangeable)."""
        while True:
            item = await self._mutations.get()
            if item is None:
                return
            ftype, rid, body = item
            try:
                if ftype in self._MUTATION_OPS:
                    # mutation bodies are (args, trace) pairs: the trace
                    # context crosses the process boundary so the child's
                    # storage-commit span joins the session's trace tree
                    args, trace_t = body
                    result = await apply_mutation(
                        self.store, self.storage,
                        self._MUTATION_OPS[ftype], args,
                        trace=TraceContext(*trace_t) if trace_t else None,
                    )
                elif ftype is RpcType.CLOSE:
                    # in-flight decodes finish before the ack: a closing
                    # parent must never see a decode fail with EOF
                    if self._decodes:
                        await asyncio.gather(*self._decodes,
                                             return_exceptions=True)
                    if self.storage is not None:
                        self.storage.close()
                    await self._reply_ok(rid, self._stats())
                    return
                else:
                    raise ReproError(f"unexpected RPC frame {ftype.name}")
                compact_error = await compact_if_due(self.store, self.storage)
                if compact_error is not None:
                    self.compact_error = compact_error
                # every ack ships the child's cumulative histogram dump;
                # latest-wins on the parent, so merging stays exact
                await self._reply_ok(
                    rid, (result, self._stats(), REGISTRY.to_dict())
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            except Exception as exc:
                await self._reply_err(rid, exc)

    # -- decode (concurrent; the worker-local coalescer batches) ---------------
    def _codec(self, m: int, t: int) -> BCHCodec:
        key = (m, t)
        if key not in self._codecs:
            self._codecs[key] = BCHCodec(field_for(m), t)
        return self._codecs[key]

    async def _handle_decode(self, rid: int, body) -> None:
        try:
            m, t, deltas, trace_t = body
            decoded, share = await self.coalescer.decode(
                self._codec(m, t), deltas,
                trace=TraceContext(*trace_t) if trace_t else None,
            )
            await self._reply_ok(
                rid,
                (decoded, share, self.coalescer.stats.to_dict(),
                 REGISTRY.to_dict()),
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:
            await self._reply_err(rid, exc)


# -- the parent side -----------------------------------------------------------

class WorkerHandle:
    """Parent-side endpoint of one live worker: pending calls + liveness."""

    def __init__(self, shard_id, process, reader, writer, on_death) -> None:
        self.shard_id = shard_id
        self.process = process
        self.reader = reader
        self.writer = writer
        self.pid: int = process.pid
        self.alive = True
        #: why the reader stopped: "" while alive, "eof" for a clean
        #: child death, else the parent-side exception (surfaced in
        #: cluster_stats so a condemned worker is diagnosable)
        self.death_reason = ""
        self._on_death = on_death
        self._expected_close = False
        self._closed = False
        self._pending: dict[int, tuple[asyncio.Future, object]] = {}
        self._next_rid = 1
        self._reader_task = asyncio.create_task(
            self._read_loop(), name=f"shard-{shard_id}-rpc"
        )

    def call(self, ftype: RpcType, body, on_ok=None) -> asyncio.Future:
        """Issue one RPC; the future resolves with the reply body.

        ``on_ok`` runs *inside the reader task* before the future
        resolves — mirror updates go through it so they happen in
        exactly the child's apply order, with no scheduling ambiguity.
        """
        if not self.alive:
            raise WorkerUnavailableError(
                f"shard {self.shard_id} worker (pid {self.pid}) is down"
            )
        rid = self._next_rid
        self._next_rid += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = (future, on_ok)
        start = time.perf_counter()

        def _observe(fut: asyncio.Future) -> None:
            # successful round trips only: a worker-death rejection would
            # put its (arbitrary) time-to-failure in the latency histogram
            if not fut.cancelled() and fut.exception() is None:
                REGISTRY.histogram(WORKER_RPC).record(
                    time.perf_counter() - start
                )

        future.add_done_callback(_observe)
        self.writer.write(
            encode_frame(ftype, _pack(rid, body),
                         max_bytes=RPC_MAX_FRAME_BYTES)
        )
        # no drain await: writes must hit the socket buffer in call
        # order, and the loopback buffer dwarfs any plausible backlog
        return future

    async def _read_loop(self) -> None:
        try:
            while True:
                ftype, payload = await read_frame(
                    self.reader, frame_enum=RpcType,
                    max_bytes=RPC_MAX_FRAME_BYTES,
                )
                rid, body = _unpack(payload)
                entry = self._pending.pop(rid, None)
                if entry is None:
                    continue
                future, on_ok = entry
                if future.done():
                    continue
                if ftype is RpcType.ERR:
                    future.set_exception(
                        body if isinstance(body, BaseException)
                        else ReproError(str(body))
                    )
                    continue
                try:
                    if on_ok is not None:
                        on_ok(body)
                except Exception as exc:
                    future.set_exception(exc)
                else:
                    future.set_result(body)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            self.death_reason = "eof"
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # e.g. a reply body that fails to unpickle: the worker is
            # condemned (protocol state is unrecoverable) but the cause
            # must survive for the operator, not die with this task
            self.death_reason = f"{type(exc).__name__}: {exc}"
        finally:
            self.alive = False
            died = WorkerUnavailableError(
                f"shard {self.shard_id} worker (pid {self.pid}) died "
                f"mid-call"
            )
            for future, _ in self._pending.values():
                if not future.done():
                    future.set_exception(died)
            self._pending.clear()
            if not self._expected_close and self._on_death is not None:
                self._on_death(self.shard_id)

    async def close(self, graceful: bool = True) -> dict | None:
        """Stop the worker: CLOSE RPC (drains + closes the journal),
        then reap the process — escalating to terminate/kill if the
        child does not exit in :data:`JOIN_TIMEOUT_S`.  Idempotent: a
        second close returns immediately (the process object is already
        released and must not be joined again)."""
        if self._closed:
            return None
        self._closed = True
        self._expected_close = True
        stats: dict | None = None
        if graceful and self.alive:
            try:
                stats = await asyncio.wait_for(
                    self.call(RpcType.CLOSE, None), JOIN_TIMEOUT_S
                )
            except (ReproError, asyncio.TimeoutError, ConnectionError,
                    OSError):
                pass
        self.alive = False
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await self._join_process()
        return stats

    async def _join_process(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self.process.join, JOIN_TIMEOUT_S
        )
        if self.process.is_alive():
            self.process.terminate()
            await loop.run_in_executor(None, self.process.join, 2.0)
        if self.process.is_alive():
            self.process.kill()
            await loop.run_in_executor(None, self.process.join, 2.0)
        # release the multiprocessing bookkeeping fds promptly
        if hasattr(self.process, "close") and not self.process.is_alive():
            self.process.close()


class WorkerSupervisor:
    """Spawns shard workers and matches their loopback connections.

    One supervisor serves one :class:`ClusterStore`: it owns the
    127.0.0.1 RPC listener, the shared authentication token, and the
    spawn-generation counter that keeps a straggler child from a failed
    earlier spawn from being mistaken for the current one.
    """

    def __init__(
        self,
        fsync: bool = False,
        compact_min_bytes: int | None = None,
        compact_factor: int | None = None,
        window_s: float = DEFAULT_WINDOW_S,
        coalesce: bool = True,
        batch: bool = True,
        storage: str = "journal",
        cache_sets: int | None = None,
    ) -> None:
        self.storage = storage
        self.fsync = fsync
        self.compact_min_bytes = compact_min_bytes
        self.compact_factor = compact_factor
        self.cache_sets = cache_sets
        self.window_s = window_s
        self.coalesce = coalesce
        self.batch = batch
        self.token = secrets.token_bytes(32)
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._generation = 0
        #: generation -> future resolving to (reader, writer, entries, stats)
        self._waiting: dict[int, asyncio.Future] = {}

    async def start(self) -> None:
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._accept, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for future in self._waiting.values():
            if not future.done():
                future.set_exception(ReproError("supervisor closed"))
        self._waiting.clear()

    async def _accept(self, reader, writer) -> None:
        """Authenticate one child: first frame must be READY + token.

        The frame is consumed in two stages: first only the 5-byte
        header plus the 32-byte raw token, then — exclusively for an
        authenticated peer — the state-dump remainder.  An unrelated
        local process connecting to the loopback port can thus neither
        drive the pickle machinery nor make the server buffer more than
        a few dozen bytes before being dropped.
        """
        try:
            prefix = await asyncio.wait_for(
                reader.readexactly(5 + len(self.token)), SPAWN_TIMEOUT_S
            )
            (body_len,) = struct.unpack_from("!I", prefix)
            authentic = (
                prefix[4] == RpcType.READY
                and 1 + len(self.token) <= body_len <= RPC_MAX_FRAME_BYTES
                and secrets.compare_digest(prefix[5:], self.token)
            )
            if not authentic:
                raise ReproError("unexpected or unauthenticated worker")
            rest = await asyncio.wait_for(
                reader.readexactly(body_len - 1 - len(self.token)),
                SPAWN_TIMEOUT_S,
            )
            _, body = _unpack(rest)
            shard_id, generation, entries, stats = body
            waiter = self._waiting.get(generation)
            if waiter is None or waiter.done():
                raise ReproError("no spawn waiting for this worker")
        except Exception:
            writer.close()
            return
        waiter.set_result((reader, writer, entries, stats))

    async def spawn(
        self, shard_id: int, shard_dir: str | None, epoch: int, on_death,
        *, role: str = "",
    ) -> tuple[WorkerHandle, list, dict]:
        """Start one worker and wait for its authenticated READY.

        Returns ``(handle, entries, stats)`` where ``entries`` is the
        child's post-recovery ``SetStore.items()`` dump (the parent
        seeds its read mirror from it) and ``stats`` the recovery
        counters.  ``role`` tags replica children (``"follower-01"``)
        so primaries and followers are distinguishable in ``ps`` output
        and per-process trace files.
        """
        await self.start()
        # spawn, not fork: the parent runs executor threads (journal
        # appends) and forking a threaded interpreter can deadlock the
        # child inside inherited locks
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        self._generation += 1
        generation = self._generation
        # snapshot the parent's observability posture at spawn time so a
        # respawned worker comes back logging and tracing like its peers
        log_level, log_json = logging_config()
        trc = tracer()
        cfg = WorkerConfig(
            shard_id=shard_id,
            port=self.port,
            token=self.token,
            generation=generation,
            shard_dir=str(shard_dir) if shard_dir is not None else None,
            epoch=epoch,
            storage=self.storage,
            fsync=self.fsync,
            compact_min_bytes=self.compact_min_bytes,
            compact_factor=self.compact_factor,
            cache_sets=self.cache_sets,
            window_s=self.window_s,
            coalesce=self.coalesce,
            batch=self.batch,
            role=role,
            log_level=log_level,
            log_json=log_json,
            slow_op_s=slow_op_threshold_s(),
            trace_dir=str(trc.trace_dir) if trc.enabled else None,
            trace_max_bytes=trc.max_bytes,
        )
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        self._waiting[generation] = waiter
        name = f"repro-shard-{shard_id}"
        if role:
            name = f"{name}-{role}"
        process = ctx.Process(
            target=worker_main, args=(cfg,), name=name, daemon=True,
        )
        process.start()
        # race READY against child death: a worker that crashes during
        # startup (say, a corrupt shard journal) must fail the spawn
        # immediately with its exit code, not burn the whole timeout
        exited: asyncio.Future = loop.create_future()
        loop.add_reader(
            process.sentinel,
            lambda: exited.done() or exited.set_result(None),
        )
        try:
            await asyncio.wait(
                {waiter, exited},
                timeout=SPAWN_TIMEOUT_S,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if waiter.done():
                reader, writer, entries, stats = waiter.result()
            elif exited.done():
                raise ReproError(
                    f"shard {shard_id} worker (pid {process.pid}) exited "
                    f"with code {process.exitcode} before READY — see its "
                    f"stderr for the recovery error"
                )
            else:
                raise ReproError(
                    f"shard {shard_id} worker (pid {process.pid}) did not "
                    f"come up within {SPAWN_TIMEOUT_S:.0f}s"
                )
        except BaseException:
            process.terminate()
            process.join(2.0)
            if process.is_alive():
                process.kill()
                process.join(2.0)
            raise
        finally:
            loop.remove_reader(process.sentinel)
            self._waiting.pop(generation, None)
            if not waiter.done():
                waiter.cancel()
        handle = WorkerHandle(shard_id, process, reader, writer, on_death)
        return handle, entries, stats


def fork_safe_cpu_count() -> int:
    """Usable cores for sizing proc-executor deployments (affinity-aware
    where the platform exposes it — container CPU quotas usually do)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


if __name__ == "__main__":  # pragma: no cover - debugging aid
    sys.exit("workers are spawned by ClusterStore, not run directly")
