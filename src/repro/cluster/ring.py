"""Consistent-hash ring: which shard owns a named set.

The cluster places each *named set* (not each element — a PBS session
needs its whole set on one shard) on one of N shard workers.  A plain
``hash(name) % N`` would reshuffle almost every set when N changes; the
classic consistent-hash ring moves only ``~1/(N+1)`` of the keys when a
shard is added and only the removed shard's keys when one leaves, which
is what makes resizing a journaled cluster cheap: only the moved sets
need re-seeding, everything else recovers in place.

Each shard projects :data:`DEFAULT_VNODES` virtual points onto a 64-bit
ring (salted SHA-256, the same stable-hash discipline as
:mod:`repro.utils.seeds` — no ``hash()`` randomization, so placement is
identical across processes and restarts).  A name is owned by the first
vnode clockwise from the name's own point.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter

#: Virtual nodes per shard.  128 points keep the max/mean load imbalance
#: around ~1.2-1.3x for realistic set counts (imbalance shrinks like
#: 1/sqrt(vnodes)); raising it costs only ring-build time and memory.
DEFAULT_VNODES = 128

_MASK64 = (1 << 64) - 1


def _point(data: str) -> int:
    """A stable 64-bit ring coordinate for a label."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _MASK64


class HashRing:
    """Maps set names to shard ids with minimal movement on resize.

    >>> ring = HashRing(range(4))
    >>> 0 <= ring.lookup("inventory/eu-west") < 4
    True
    >>> HashRing(range(4)).lookup("x") == ring.lookup("x")   # deterministic
    True
    """

    def __init__(self, shards=(), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._members: set[int] = set()
        self._points: list[int] = []      #: sorted vnode coordinates
        self._owners: list[int] = []      #: shard id per coordinate
        for shard in shards:
            self.add(shard)

    # -- membership ------------------------------------------------------------
    @property
    def members(self) -> list[int]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard: int) -> bool:
        return shard in self._members

    def add(self, shard: int) -> None:
        """Join one shard (its vnode points are a pure function of its id)."""
        shard = int(shard)
        if shard in self._members:
            raise ValueError(f"shard {shard} already on the ring")
        self._members.add(shard)
        for point, owner in self._vnode_points(shard):
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, owner)

    def remove(self, shard: int) -> None:
        """Leave: only names owned by ``shard`` change owners."""
        shard = int(shard)
        if shard not in self._members:
            raise ValueError(f"shard {shard} not on the ring")
        self._members.discard(shard)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != shard
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def _vnode_points(self, shard: int):
        for vnode in range(self.vnodes):
            yield _point(f"shard:{shard}:vnode:{vnode}"), shard

    # -- placement -------------------------------------------------------------
    def lookup(self, name: str) -> int:
        """The shard owning ``name`` (first vnode clockwise from its point)."""
        if not self._points:
            raise ValueError("ring has no shards")
        index = bisect.bisect_right(self._points, _point(f"set:{name}"))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignments(self, names) -> dict[str, int]:
        """Placement for a batch of names (testing / rebalance planning)."""
        return {name: self.lookup(name) for name in names}

    def diff(self, other: "HashRing", names) -> dict[str, tuple[int, int]]:
        """The move plan from this ring's layout to ``other``'s.

        Maps each of ``names`` whose owner changes to ``(old_shard,
        new_shard)``; names that stay put are omitted.  This is what a
        rebalance (:mod:`repro.cluster.rebalance`) must physically move —
        for a well-balanced ring, ~``1/(N+1)`` of the names on grow.
        """
        moves: dict[str, tuple[int, int]] = {}
        for name in names:
            old, new = self.lookup(name), other.lookup(name)
            if old != new:
                moves[name] = (old, new)
        return moves

    def load(self, names) -> Counter:
        """How many of ``names`` land on each member shard."""
        counts: Counter = Counter({shard: 0 for shard in self._members})
        for name in names:
            counts[self.lookup(name)] += 1
        return counts
