"""The cluster manifest: which layout a data directory is committed to.

PR 3's cluster layer had a silent data-loss hole: the consistent-hash
ring re-derives placement from ``--shards`` alone, so restarting a
journaled data directory with a different shard count silently remapped
~1/(N+1) of the set names to shards whose journals had never heard of
them — those sets recovered *empty* while their bytes sat stranded in
the old shard directories.  The manifest closes the hole by making the
layout explicit and durable: every ``--data-dir`` carries a
``manifest.json`` recording the shard count, the vnode count, and a
monotonically increasing **layout epoch**, plus the epoch each shard
directory's files were last rewritten at (shard files are epoch-named,
see :func:`repro.cluster.journal.snapshot_filename`).

:class:`ClusterStore.start` compares the manifest against the requested
topology and **refuses to start on a mismatch** with
:class:`TopologyMismatchError` — the fix is ``repro rebalance`` (or
``repro serve --rebalance``), which migrates the journals and commits
the new topology by atomically replacing this file
(:mod:`repro.cluster.rebalance`).  The manifest replace is the single
commit point of a rebalance: written to a temp file, fsync'd, then
``os.replace``'d, so it is always either the old layout or the new one.

Pre-manifest data directories (PR 3) are adopted in place: if the
``shard-NN`` directories on disk match the requested shard count, a
fresh epoch-0 manifest is written; if they do not, startup refuses just
as it would on a manifest mismatch.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

MANIFEST_NAME = "manifest.json"

#: Manifest schema version (bump on incompatible layout changes).
#: Format 2 (PR 6) added the ``storage`` backend field; format 3
#: (PR 10) added the replication fields (``replicas``,
#: ``primary_replica``, ``cursors``).  Older formats are still read,
#: with the newer fields defaulting to their pre-replication values
#: (no followers, every shard served from its ``shard-NN`` root).
MANIFEST_FORMAT = 3

_READABLE_FORMATS = (1, 2, 3)

_SHARD_DIR_RE = re.compile(r"^shard-(\d+)$")


class ManifestError(ReproError):
    """The manifest file is unreadable or structurally invalid."""


class TopologyMismatchError(ManifestError):
    """The requested topology does not match the committed layout.

    Raised instead of silently remapping set names to shards that never
    journaled them (the PR-3 data-loss bug this module exists to fix).
    """


class StorageMismatchError(ManifestError):
    """The requested storage backend does not match the committed one.

    The shard files on disk belong to the committed backend; opening
    them with another would recover every set empty (the new backend
    sees no files of its own) — the storage twin of
    :class:`TopologyMismatchError`, fixed the same way: an offline
    ``repro rebalance --storage`` converts the shard files first.
    """


def shard_dirname(shard: int) -> str:
    """The on-disk directory name for one shard."""
    return f"shard-{shard:02d}"


def follower_dirname(replica: int) -> str:
    """The directory name of follower replica ``replica`` (>= 1),
    nested inside the shard's ``shard-NN`` directory."""
    if replica < 1:
        raise ManifestError(f"follower replicas are numbered from 1, "
                            f"got {replica}")
    return f"follower-{replica:02d}"


def replica_dir(data_dir: str | Path, shard: int, replica: int) -> Path:
    """The on-disk directory holding one replica of one shard.

    Replica 0 is the ``shard-NN`` root itself (the historical primary
    location); replicas >= 1 live in ``shard-NN/follower-KK``
    subdirectories — the rebalance sweep only ever unlinks *files*
    inside a shard root, so follower directories survive it untouched.
    """
    root = Path(data_dir) / shard_dirname(shard)
    if replica == 0:
        return root
    return root / follower_dirname(replica)


@dataclass
class ClusterManifest:
    """The committed layout of one cluster data directory.

    Fields: ``shards`` and ``vnodes`` fix the consistent-hash ring (and
    therefore every set's placement); ``epoch`` is the monotonically
    increasing layout epoch bumped by each committed rebalance; and
    ``shard_epochs[i]`` records which epoch shard *i*'s files were last
    rewritten at, selecting the epoch-qualified file names inside
    ``shard-NN/`` (an unaffected shard keeps its older epoch's files
    byte-identical across rebalances).  The subprocess executor hands
    each worker child its shard's epoch, so every process has an
    explicit, versioned view of which files it owns.
    """

    shards: int
    vnodes: int
    epoch: int = 0
    #: layout epoch each shard directory's files were last rewritten at
    #: (selects the epoch-qualified file names inside ``shard-NN/``)
    shard_epochs: list[int] = field(default_factory=list)
    #: storage backend name the shard files were written by
    #: (:data:`repro.cluster.storage.BACKEND_NAMES`)
    storage: str = "journal"
    #: follower replicas per shard (0 = replication off)
    replicas: int = 0
    #: which replica directory is each shard's current primary
    #: (0 = the ``shard-NN`` root, k = ``shard-NN/follower-KK``);
    #: rewritten atomically by a failover promotion — this field *is*
    #: the promotion's commit point
    primary_replica: list[int] = field(default_factory=list)
    #: best-effort replication cursor per shard: the last shipped
    #: sequence number persisted at clean shutdown / promotion, so a
    #: restarted primary resumes numbering monotonically (followers
    #: re-bootstrap from a snapshot regardless, see
    #: :mod:`repro.cluster.replication`)
    cursors: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ManifestError(f"shards must be >= 1, got {self.shards}")
        if self.vnodes < 1:
            raise ManifestError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.epoch < 0:
            raise ManifestError(f"epoch must be >= 0, got {self.epoch}")
        if not self.storage or not isinstance(self.storage, str):
            raise ManifestError(
                f"storage must be a backend name, got {self.storage!r}"
            )
        if not self.shard_epochs:
            self.shard_epochs = [0] * self.shards
        if len(self.shard_epochs) != self.shards:
            raise ManifestError(
                f"shard_epochs has {len(self.shard_epochs)} entries "
                f"for {self.shards} shards"
            )
        if self.replicas < 0:
            raise ManifestError(
                f"replicas must be >= 0, got {self.replicas}"
            )
        if not self.primary_replica:
            self.primary_replica = [0] * self.shards
        if len(self.primary_replica) != self.shards:
            raise ManifestError(
                f"primary_replica has {len(self.primary_replica)} entries "
                f"for {self.shards} shards"
            )
        for shard, replica in enumerate(self.primary_replica):
            if not 0 <= replica <= self.replicas:
                raise ManifestError(
                    f"shard {shard}: primary replica {replica} is outside "
                    f"0..{self.replicas}"
                )
        if not self.cursors:
            self.cursors = [0] * self.shards
        if len(self.cursors) != self.shards:
            raise ManifestError(
                f"cursors has {len(self.cursors)} entries "
                f"for {self.shards} shards"
            )

    def shard_epoch(self, shard: int) -> int:
        return self.shard_epochs[shard]

    def to_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "shards": self.shards,
            "vnodes": self.vnodes,
            "epoch": self.epoch,
            "shard_epochs": list(self.shard_epochs),
            "storage": self.storage,
            "replicas": self.replicas,
            "primary_replica": list(self.primary_replica),
            "cursors": list(self.cursors),
        }

    @classmethod
    def from_dict(cls, data: dict, source: str = "manifest") -> "ClusterManifest":
        if not isinstance(data, dict):
            raise ManifestError(f"{source}: not a JSON object")
        if data.get("format") not in _READABLE_FORMATS:
            raise ManifestError(
                f"{source}: unsupported manifest format {data.get('format')!r}"
            )
        try:
            return cls(
                shards=int(data["shards"]),
                vnodes=int(data["vnodes"]),
                epoch=int(data["epoch"]),
                shard_epochs=[int(e) for e in data["shard_epochs"]],
                storage=str(data.get("storage", "journal")),
                replicas=int(data.get("replicas", 0)),
                primary_replica=[
                    int(r) for r in data.get("primary_replica", [])
                ],
                cursors=[int(c) for c in data.get("cursors", [])],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"{source}: malformed manifest: {exc}") from None


def manifest_path(data_dir: str | Path) -> Path:
    return Path(data_dir) / MANIFEST_NAME


def load_manifest(data_dir: str | Path) -> ClusterManifest | None:
    """The committed manifest, or ``None`` for a pre-manifest directory."""
    path = manifest_path(data_dir)
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(f"{path}: unreadable manifest: {exc}") from None
    return ClusterManifest.from_dict(data, source=str(path))


def write_manifest(
    data_dir: str | Path, manifest: ClusterManifest, fsync: bool = True
) -> None:
    """Atomically install ``manifest`` as the directory's committed layout.

    Write-temp / fsync / ``os.replace`` (+ directory fsync): readers see
    either the previous manifest or this one, never a torn file.  This is
    the *only* commit point a rebalance has.
    """
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    path = manifest_path(data_dir)
    tmp_path = path.with_name(MANIFEST_NAME + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(manifest.to_dict(), fh, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    if fsync:
        dir_fd = os.open(data_dir, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def discover_shard_dirs(data_dir: str | Path) -> list[int]:
    """Shard ids with a ``shard-NN`` directory on disk, sorted."""
    data_dir = Path(data_dir)
    if not data_dir.exists():
        return []
    ids = []
    for entry in data_dir.iterdir():
        match = _SHARD_DIR_RE.match(entry.name)
        if match and entry.is_dir():
            ids.append(int(match.group(1)))
    return sorted(ids)


def infer_legacy_manifest(
    data_dir: str | Path, vnodes: int
) -> ClusterManifest | None:
    """A synthetic epoch-0 manifest for a pre-manifest (PR 3) directory.

    The shard count is whatever ``shard-NN`` directories exist; the vnode
    count cannot be recovered from disk, so the caller's is trusted (PR 3
    deployments used the default).  ``None`` for an empty directory.
    """
    ids = discover_shard_dirs(data_dir)
    if not ids:
        return None
    if ids != list(range(len(ids))):
        raise ManifestError(
            f"{data_dir}: non-contiguous shard directories {ids} — "
            f"cannot infer the legacy topology"
        )
    return ClusterManifest(shards=len(ids), vnodes=vnodes, epoch=0)


def load_or_adopt(
    data_dir: str | Path, shards: int, vnodes: int,
    storage: str = "journal",
) -> ClusterManifest:
    """The startup check: the committed layout, verified against the ask.

    * manifest present and matching — return it;
    * manifest present and differing (topology *or* storage backend) —
      :class:`TopologyMismatchError` / :class:`StorageMismatchError`
      (run ``repro rebalance`` first, never silently remap);
    * no manifest, pre-manifest shard directories matching ``shards`` —
      adopt: write and return a fresh epoch-0 journal manifest (legacy
      directories are journal-format by definition; a sqlite ask then
      refuses with the mismatch error);
    * no manifest, shard directories differing — refuse like a mismatch;
    * empty directory — initialize it with a fresh epoch-0 manifest
      committed to ``storage``.
    """
    data_dir = Path(data_dir)
    manifest = load_manifest(data_dir)
    if manifest is None:
        adopted = infer_legacy_manifest(data_dir, vnodes=vnodes)
        if adopted is not None and adopted.shards == shards:
            write_manifest(data_dir, adopted)
        manifest = adopted
    if manifest is None:
        manifest = ClusterManifest(
            shards=shards, vnodes=vnodes, epoch=0, storage=storage
        )
        write_manifest(data_dir, manifest)
        return manifest
    if manifest.shards != shards or manifest.vnodes != vnodes:
        raise TopologyMismatchError(
            f"{data_dir} is committed to {manifest.shards} shards / "
            f"{manifest.vnodes} vnodes (layout epoch {manifest.epoch}) but "
            f"{shards} shards / {vnodes} vnodes were requested; starting "
            f"anyway would recover remapped sets empty.  Run "
            f"'repro rebalance --data-dir {data_dir} --shards {shards}' "
            f"(or 'repro serve --rebalance') to migrate the journals first."
        )
    if manifest.storage != storage:
        raise StorageMismatchError(
            f"{data_dir} is committed to the {manifest.storage!r} storage "
            f"backend but {storage!r} was requested; the shard files on "
            f"disk are {manifest.storage} files, so starting anyway would "
            f"recover every set empty.  Run 'repro rebalance --data-dir "
            f"{data_dir} --shards {shards} --storage {storage}' to convert "
            f"the shard files first."
        )
    return manifest
