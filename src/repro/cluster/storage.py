"""The per-shard storage contract: what it means to persist a shard.

Until this module existed the persistence contract was implicit: the
router, the subprocess worker, and the offline rebalance all reached
directly into journal-file internals (``journal_filename``,
``snapshot-eN.bin``, ``write_snapshot``, ``replay_shard``).
:class:`StorageBackend` makes the contract explicit and narrow so the
journal files (:class:`repro.cluster.journal.JournalBackend`) and the
WAL-mode SQLite store (:class:`repro.cluster.sqlite.SqliteBackend`) are
interchangeable behind it — selected per data directory, recorded in the
cluster manifest, and surfaced as ``repro serve --storage``.

The durability / ack-ordering contract
--------------------------------------

Every backend MUST preserve the invariant the journal established in
PR 3: **a mutation is durable before it is visible**.  Concretely:

* :meth:`StorageBackend.record_diff` / :meth:`~StorageBackend.record_create`
  return only after the mutation is committed to the backend's durable
  medium (journal append + flush, SQLite transaction commit).  If they
  raise, *nothing* may have been persisted — the caller leaves the
  in-memory set untouched and the session is NOT acknowledged.
* The in-memory store mutates strictly *after* the durable write
  returns; no concurrent snapshot may observe state that a crash
  recovery would roll back.
* ``fsync=False`` backends may buffer in the OS (crash of the *machine*
  can lose the tail) but must already tolerate SIGKILL of the process:
  recovery finds every acknowledged mutation or a clean prefix of them
  (journal: torn-tail truncation; SQLite: WAL recovery).

There are two ways a backend wires into that protocol, declared by
:attr:`StorageBackend.concurrent_writes`:

* ``True`` (journal): the durable write is handed to the default
  thread-pool executor by :func:`apply_mutation` so appends commit in
  parallel across shards; the store then mutates with
  ``persisted=True`` so its own persistence hook stays quiet.
* ``False`` (SQLite — connections are bound to their opening thread):
  the store's injected persistence hook (see
  :class:`repro.service.store.SetStore`) performs the durable write
  inline, on the event loop, immediately before the in-memory apply.

Both routes end at the same place: durable first, visible second.
"""

from __future__ import annotations

import asyncio
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import ClassVar, Iterable, Iterator

from repro.errors import ReproError
from repro.obs.logs import get_logger, slow_op_threshold_s
from repro.obs.metrics import REGISTRY, STORAGE_COMMIT
from repro.obs.trace import tracer
from repro.service.store import SetStore

log = get_logger("storage")

#: Registered backend names, in the order the CLI offers them.
BACKEND_NAMES = ("journal", "sqlite")


class StorageCorruptError(ReproError):
    """A backend's durable state failed to parse / open.

    Raised for damage that atomic installation should have made
    impossible (a torn snapshot, an unreadable SQLite header) — never
    for a torn journal/WAL tail, which is expected crash residue and is
    recovered from, not raised."""


class StorageBackend(ABC):
    """One shard's durable state behind a narrow, swappable API.

    Concrete backends are constructed as ``Backend(directory, epoch=...,
    create=..., **tuning)`` where ``tuning`` is the subset of
    :attr:`TUNING` keys the caller wants to override — use
    :func:`open_backend` rather than constructing directly so unknown
    keys are validated and irrelevant ones dropped.

    There is exactly one writing owner per shard directory at a time
    (the inline shard worker task or the shard's worker subprocess);
    the owner serializes all ``record_*`` calls.  Read-only users (the
    offline rebalance, stats tooling) open a second instance with
    ``create=False`` and only call :meth:`iter_sets` / :meth:`stats`.
    """

    #: Backend name as recorded in the cluster manifest and accepted by
    #: ``--storage``.
    name: ClassVar[str]

    #: Whether ``record_*`` may be called from a worker thread while the
    #: event loop keeps serving (journal: yes).  ``False`` backends are
    #: driven inline through the store's persistence hook instead.
    concurrent_writes: ClassVar[bool]

    #: Whether :meth:`compact` needs the full ``(name, values, version)``
    #: entry list (journal snapshot rewrite) or compacts from its own
    #: durable state (SQLite WAL checkpoint) — the latter never
    #: materializes the whole store in memory.
    compact_from_entries: ClassVar[bool]

    #: Constructor tuning keys this backend understands.
    TUNING: ClassVar[frozenset]

    #: File-name prefixes of every durable file this backend may write
    #: in a shard directory, across *all* epochs (``data_filenames`` is
    #: the exact per-epoch name set; the prefixes also cover stale
    #: epochs and sidecars).  :meth:`discard` and the follower
    #: re-bootstrap in :mod:`repro.cluster.replication` delete by
    #: these, so a prefix must never collide with files the backend
    #: does not own.
    FILE_PREFIXES: ClassVar[tuple]

    epoch: int
    directory: Path

    # -- lifecycle -------------------------------------------------------------
    @abstractmethod
    def open_store(self) -> SetStore:
        """Recover the committed state and return the live store.

        The returned store is wired for write-through persistence: its
        ``persistence`` attribute is this backend, so direct
        ``store.apply_diff`` / ``store.create`` calls are durable before
        they are visible (recovery itself replays with the hook unset).
        Must be called exactly once, before any ``record_*`` call."""

    @abstractmethod
    def close(self) -> None:
        """Flush and release the durable medium.  Idempotent."""

    # -- durable writes (see the module docstring for ordering) ---------------
    @abstractmethod
    def record_create(self, name: str, values, version: int = 0) -> None:
        """Durably record a full-state replacement of one named set.

        Returns only after the record is committed; on error nothing is
        persisted and the caller must not mutate the in-memory set."""

    @abstractmethod
    def record_diff(self, name: str, add=(), remove=()) -> None:
        """Durably record one apply-diff against an existing set.

        Callers validate the target exists *before* calling (a DIFF must
        never precede its CREATE); backends that can detect a missing
        target anyway (SQLite) raise ``UnknownSetError`` without
        persisting.  Empty diffs are the caller's job to skip."""

    # -- committed-state readers ----------------------------------------------
    @abstractmethod
    def iter_sets(self) -> Iterator[tuple[str, frozenset, int]]:
        """Yield ``(name, values, version)`` for every committed set.

        Reads the durable state, not any live in-memory cache — this is
        what the rebalance migrates through, so it must reflect every
        acknowledged mutation."""

    # -- compaction ------------------------------------------------------------
    @abstractmethod
    def should_compact(self) -> bool:
        """Whether the reclaimable log (journal / WAL) has outgrown the
        backend's compaction threshold."""

    @abstractmethod
    def compact(self, entries=None) -> None:
        """Fold the log into the base state.  ``entries`` is the live
        ``store.items()`` listing for :attr:`compact_from_entries`
        backends and ``None`` otherwise.  Crash-safe at every point:
        either layout recovers the same sets."""

    # -- introspection ---------------------------------------------------------
    @abstractmethod
    def stats(self) -> dict:
        """JSON-able counters.  Every backend reports at least ``epoch``,
        ``records_appended``, ``compactions``, ``recovered_sets`` and
        ``tail_error`` ("" when recovery found no crash residue)."""

    # -- offline layout (rebalance) -------------------------------------------
    @classmethod
    @abstractmethod
    def data_filenames(cls, epoch: int = 0) -> set:
        """Every file name this backend may own in a shard directory at
        ``epoch`` — the rebalance sweep keeps exactly these."""

    @classmethod
    @abstractmethod
    def stage(cls, directory, entries: Iterable, epoch: int = 0,
              fsync: bool = True) -> int:
        """Write ``(name, values, version)`` entries as a complete,
        atomically-installed shard state at ``epoch`` next to whatever
        else the directory holds; returns the staged byte size.  Used by
        the rebalance to stage a new layout before the manifest commit,
        and by follower bootstrap to install the primary's snapshot."""

    @classmethod
    def discard(cls, directory) -> int:
        """Delete every file this backend owns in ``directory``.

        Only *files* matching :attr:`FILE_PREFIXES` (or ``.tmp``
        leftovers) are unlinked; subdirectories — including nested
        follower replica dirs — are never touched.  Returns the number
        of files removed.  This is how a follower replica is reset
        before a fresh snapshot bootstrap: stale state must never be
        double-applied on top of."""
        directory = Path(directory)
        if not directory.exists():
            return 0
        removed = 0
        for entry in directory.iterdir():
            if entry.is_file() and (
                entry.name.startswith(cls.FILE_PREFIXES)
                or entry.name.endswith(".tmp")
            ):
                entry.unlink()
                removed += 1
        return removed


def backend_class(name: str) -> type:
    """The :class:`StorageBackend` subclass registered under ``name``."""
    if name == "journal":
        from repro.cluster.journal import JournalBackend
        return JournalBackend
    if name == "sqlite":
        from repro.cluster.sqlite import SqliteBackend
        return SqliteBackend
    raise ReproError(
        f"unknown storage backend {name!r}; expected one of "
        + ", ".join(BACKEND_NAMES)
    )


def open_backend(
    name: str, directory, epoch: int = 0, create: bool = True, **tuning
) -> StorageBackend:
    """Construct the named backend, validating tuning keys.

    Keys no registered backend understands raise; keys another backend
    understands but this one does not (``cache_sets`` on journal) are
    dropped, so one :class:`repro.cluster.config.ClusterConfig` can
    carry the union of every backend's tuning."""
    cls = backend_class(name)
    known = frozenset().union(
        *(backend_class(n).TUNING for n in BACKEND_NAMES)
    )
    unknown = set(tuning) - known
    if unknown:
        raise ReproError(
            f"unknown storage tuning keys {sorted(unknown)} for "
            f"backend {name!r}"
        )
    kwargs = {k: v for k, v in tuning.items() if k in cls.TUNING}
    return cls(directory, epoch=epoch, create=create, **kwargs)


# -- the shared durable-first mutation protocol --------------------------------

async def apply_mutation(store: SetStore, storage: StorageBackend | None,
                         op: str, args: tuple, trace=None):
    """Apply one shard mutation with the durable-first protocol.

    ``trace`` (the originating session's span context, if any) parents
    the ``storage.commit`` span; mutations that actually hit the
    durable medium are also recorded into the storage-commit latency
    histogram and WARN-logged past the slow-op threshold.

    This is the *single* definition of how a shard worker mutates — the
    inline executor's task loop and the subprocess executor's child both
    route through it, which is what keeps the two executors' stores and
    shard files bit-for-bit interchangeable:

    * ``apply`` ``(name, add, remove)`` — raise the store's own
      ``UnknownSetError`` *before* the durable write (a DIFF record must
      never precede its CREATE), skip the write for empty diffs
      (converged re-sync passes change nothing), persist, then mutate;
      returns the changed-element count.
    * ``create`` / ``restore`` ``(name, values, version)`` — persist the
      full-state replacement, then replace the set.
    * ``sync`` — a no-op ordering barrier.

    For ``concurrent_writes`` backends the durable write runs in the
    default thread-pool executor so commits proceed in parallel across
    shards; same-thread backends persist inline through the store's own
    hook.  Either way the write completes *before* the store mutates: a
    failed write leaves the store untouched, and no concurrent snapshot
    can observe state a crash recovery would roll back.
    """
    durable = storage is not None and (
        op in ("create", "restore")
        or (op == "apply" and (len(args[1]) or len(args[2])))
    )
    if not durable:
        return await _mutate(store, storage, op, args)
    ts = time.time()
    start = time.perf_counter()
    result = await _mutate(store, storage, op, args)
    elapsed = time.perf_counter() - start
    REGISTRY.histogram(STORAGE_COMMIT).record(elapsed)
    trc = tracer()
    if trc.enabled:
        trc.emit(
            "storage.commit", trc.child(trace) or trc.mint(), trace,
            ts, elapsed, op=op, backend=storage.name,
        )
    if elapsed >= slow_op_threshold_s():
        log.warning(
            "slow storage commit",
            extra={
                "elapsed_ms": round(elapsed * 1e3, 3),
                "op": op,
                "backend": storage.name,
                "set": args[0],
                "trace": trace.hex() if trace is not None else "",
            },
        )
    return result


async def _mutate(store: SetStore, storage: StorageBackend | None,
                  op: str, args: tuple):
    loop = asyncio.get_running_loop()
    offload = storage is not None and storage.concurrent_writes
    if op == "apply":
        name, add, remove = args
        if not offload:
            # memory-only, or the store's persistence hook commits inline
            # repro: ignore[blocking-call-in-async] -- same-thread
            # backend contract: sqlite connections are thread-bound, so
            # the single-transaction commit runs inline by design
            return store.apply_diff(name, add=add, remove=remove)
        if name not in store:
            # raise the store's own error *before* the durable write
            # repro: ignore[blocking-call-in-async] -- no persistence
            # hook fires here: the call only raises UnknownSetError
            store.apply_diff(name)
        if len(add) or len(remove):
            await loop.run_in_executor(
                None, storage.record_diff, name, add, remove
            )
            # repro: ignore[blocking-call-in-async] -- persisted=True:
            # the durable write already ran in the executor above; this
            # is the in-memory apply only
            return store.apply_diff(
                name, add=add, remove=remove, persisted=True
            )
        # repro: ignore[blocking-call-in-async] -- empty diff: the
        # persistence hook only fires for non-empty diffs, so this is
        # a pure in-memory reconcile-counter bump
        return store.apply_diff(name, add=add, remove=remove)
    if op in ("create", "restore"):
        name, values, version = args
        if not offload:
            # repro: ignore[blocking-call-in-async] -- same-thread
            # backend contract: inline commit (see apply above)
            store.create(name, values, version=version)
            return None
        await loop.run_in_executor(
            None, storage.record_create, name, values, version
        )
        # repro: ignore[blocking-call-in-async] -- persisted=True: the
        # durable write already ran in the executor above
        store.create(name, values, version=version, persisted=True)
        return None
    if op == "sync":
        return None
    raise ReproError(f"unknown shard mutation op {op!r}")


async def compact_if_due(store: SetStore,
                         storage: StorageBackend | None) -> str | None:
    """Run a due background compaction; shared by both executors.

    Returns ``None`` when no compaction was due, ``""`` after a
    successful one, and the error string after a failed one — a failed
    compaction must never be charged to the (already durable, already
    applied) mutation that happened to trigger it.
    """
    if storage is None or not storage.should_compact():
        return None
    try:
        if storage.compact_from_entries:
            entries = store.items()
            await asyncio.get_running_loop().run_in_executor(
                None, storage.compact, entries
            )
        else:
            # compacts from its own durable state (e.g. a WAL
            # checkpoint) — cheap, same-thread, no materialization
            storage.compact()
        return ""
    except Exception as exc:
        return f"{type(exc).__name__}: {exc}"
