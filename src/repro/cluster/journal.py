"""Per-shard durability: append-only apply-diff journal + snapshot.

Every mutation a shard accepts is appended to ``journal.log`` as one
length-prefixed, checksummed record *before* the session's RESULT is
acknowledged; periodically the whole shard state is rewritten as
``snapshot.bin`` (atomically, via ``os.replace``) and the journal is
truncated.  Recovery is therefore always *snapshot, then journal*: the
snapshot must parse completely (it was installed atomically), while the
journal tolerates a torn tail — a crash mid-append loses at most the
record being written, and replay stops cleanly at the last complete,
checksum-verified record.

Record framing (all integers big-endian, like :mod:`repro.service.wire`)::

    | payload_len (4) | checksum (4) | payload ... |

where ``checksum`` is the paper's set checksum ``c(S)`` of §2.2.3
(:func:`repro.core.checksum.set_checksum`) taken over the payload bytes.
Payloads::

    CREATE:  op=1 | name_len (2) | name | version (8) | count (4) | elements
    DIFF:    op=2 | name_len (2) | name | n_add (4) | n_rm (4) | adds | rms

Elements are 8-byte big-endian unsigned.  A snapshot file is simply a
sequence of CREATE records (one per named set, version included), so one
codec serves both files and replaying a snapshot is replaying a journal.

File names are *epoch-qualified*: layout epoch 0 (the pre-manifest
layout) uses the bare ``snapshot.bin`` / ``journal.log`` names, epoch
``e > 0`` uses ``snapshot-e{e}.bin`` / ``journal-e{e}.log``.  The
cluster manifest (:mod:`repro.cluster.manifest`) records which epoch
each shard directory is at; a rebalance stages a whole new epoch's
files next to the old ones and commits by atomically replacing the
manifest, so a crash mid-rebalance never damages the current layout
(see :mod:`repro.cluster.rebalance`).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.storage import (
    StorageBackend,
    StorageCorruptError,
    apply_mutation,
    compact_if_due,
)
from repro.core.checksum import set_checksum
from repro.errors import ReproError
from repro.service.store import SetStore, UnknownSetError

__all__ = [
    "JournalBackend",
    "JournalCorruptError",
    "Record",
    "ShardStorage",
    "apply_mutation",
    "compact_if_due",
    "encode_create",
    "encode_diff",
    "journal_filename",
    "read_records",
    "replay_shard",
    "snapshot_filename",
    "write_snapshot",
]

OP_CREATE = 1
OP_DIFF = 2

_HEADER = struct.Struct("!II")

#: Upper bound on one record's payload — a corrupt length prefix must not
#: make replay attempt a multi-gigabyte read.
MAX_RECORD_BYTES = 1 << 28

#: Compaction policy: rewrite the snapshot once the journal outgrows
#: ``max(COMPACT_MIN_BYTES, COMPACT_FACTOR * len(snapshot))``.
COMPACT_MIN_BYTES = 1 << 16
COMPACT_FACTOR = 4


class JournalCorruptError(StorageCorruptError):
    """A snapshot file failed to parse (journals tolerate torn tails)."""


def snapshot_filename(epoch: int = 0) -> str:
    """The snapshot file name for a layout epoch (0 = legacy bare name)."""
    return "snapshot.bin" if epoch == 0 else f"snapshot-e{epoch}.bin"


def journal_filename(epoch: int = 0) -> str:
    """The journal file name for a layout epoch (0 = legacy bare name)."""
    return "journal.log" if epoch == 0 else f"journal-e{epoch}.log"


@dataclass
class Record:
    """One decoded journal record."""

    op: int
    name: str
    version: int = 0                      #: CREATE only
    add: np.ndarray = field(default_factory=lambda: np.empty(0, np.uint64))
    remove: np.ndarray = field(default_factory=lambda: np.empty(0, np.uint64))


def _checksum(payload: bytes) -> int:
    """The §2.2.3 set checksum over *position-weighted* payload bytes.

    ``c(S)`` is additive, so summing raw bytes would be blind to
    reorderings; weighting each byte by its 1-based offset (c(S) over the
    multiset ``{(i+1) * b_i}``, Fletcher-style) makes transpositions and
    shifted splices change the sum.  Compensating corruptions can still
    collide (it is a sum, not a CRC), but torn tails are additionally
    caught by the length prefix and the structural decode."""
    data = np.frombuffer(payload, dtype=np.uint8).astype(np.uint64)
    weights = np.arange(1, len(data) + 1, dtype=np.uint64)
    return set_checksum(data * weights, log_u=32)


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), _checksum(payload)) + payload


def _name_bytes(name: str) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ReproError(f"set name too long to journal: {name[:40]!r}...")
    return struct.pack("!H", len(raw)) + raw


def _elements_bytes(values) -> bytes:
    return np.ascontiguousarray(
        np.fromiter((int(v) for v in values), dtype=np.uint64)
        if not isinstance(values, np.ndarray)
        else values,
        dtype=">u8",
    ).tobytes()


def encode_create(name: str, values, version: int = 0) -> bytes:
    """A full-state record: replaces the named set on replay."""
    body = _elements_bytes(values)
    payload = (
        struct.pack("!B", OP_CREATE)
        + _name_bytes(name)
        + struct.pack("!QI", version, len(body) // 8)
        + body
    )
    return _frame(payload)


def encode_diff(name: str, add=(), remove=()) -> bytes:
    """An apply-diff record: merged into the named set on replay."""
    add_body = _elements_bytes(add)
    rm_body = _elements_bytes(remove)
    payload = (
        struct.pack("!B", OP_DIFF)
        + _name_bytes(name)
        + struct.pack("!II", len(add_body) // 8, len(rm_body) // 8)
        + add_body
        + rm_body
    )
    return _frame(payload)


def _decode_payload(payload: bytes) -> Record:
    (op,) = struct.unpack_from("!B", payload)
    (name_len,) = struct.unpack_from("!H", payload, 1)
    offset = 3 + name_len
    name = payload[3:offset].decode("utf-8")
    if op == OP_CREATE:
        version, count = struct.unpack_from("!QI", payload, offset)
        offset += 12
        if len(payload) != offset + 8 * count:
            raise ReproError("CREATE record length mismatch")
        values = np.frombuffer(payload, dtype=">u8", count=count,
                               offset=offset).astype(np.uint64)
        return Record(op=op, name=name, version=version, add=values)
    if op == OP_DIFF:
        n_add, n_rm = struct.unpack_from("!II", payload, offset)
        offset += 8
        if len(payload) != offset + 8 * (n_add + n_rm):
            raise ReproError("DIFF record length mismatch")
        add = np.frombuffer(payload, dtype=">u8", count=n_add,
                            offset=offset).astype(np.uint64)
        remove = np.frombuffer(payload, dtype=">u8", count=n_rm,
                               offset=offset + 8 * n_add).astype(np.uint64)
        return Record(op=op, name=name, add=add, remove=remove)
    raise ReproError(f"unknown journal op {op}")


def read_records(data: bytes) -> tuple[list[Record], int, str]:
    """Decode back-to-back records, stopping at the first damaged one.

    Returns ``(records, clean_offset, tail_error)`` where ``clean_offset``
    is the byte offset just past the last complete, verified record and
    ``tail_error`` describes why scanning stopped ("" when the whole
    buffer parsed).  This is the crash-tolerance contract: a torn tail is
    data loss bounded by one record, never a failed recovery.
    """
    records: list[Record] = []
    view = memoryview(data)
    offset = 0
    while offset < len(view):
        if offset + _HEADER.size > len(view):
            return records, offset, "truncated record header"
        length, checksum = _HEADER.unpack_from(view, offset)
        if length > MAX_RECORD_BYTES:
            return records, offset, f"implausible record length {length}"
        start = offset + _HEADER.size
        if start + length > len(view):
            return records, offset, "truncated record body"
        payload = bytes(view[start : start + length])
        if _checksum(payload) != checksum:
            return records, offset, "record checksum mismatch"
        try:
            records.append(_decode_payload(payload))
        except (ReproError, UnicodeDecodeError, struct.error) as exc:
            return records, offset, f"undecodable record: {exc}"
        offset = start + length
    return records, offset, ""


class JournalBackend(StorageBackend):
    """One shard's on-disk state: ``snapshot.bin`` + ``journal.log``.

    The original (PR 3) storage backend, now behind the
    :class:`repro.cluster.storage.StorageBackend` protocol — the
    whole store lives in memory and every byte is replayed at open, so
    it is the low-latency choice for stores that fit in RAM
    (``SqliteBackend`` is the bigger-than-RAM one).  The caller owns
    serialization — appends must not interleave — and decides *when* to
    compact; this class owns the bytes and the crash-safety protocol.
    There is exactly one writing owner per shard directory: the inline
    shard worker task (:mod:`repro.cluster.router`) or the shard's
    worker subprocess (:mod:`repro.cluster.proc`), selected by the
    store's executor.

    Lifecycle: :meth:`open_store` (replay + open for appends), then any
    number of :meth:`record_diff` / :meth:`record_create` /
    :meth:`compact` calls, then :meth:`close` (idempotent).
    :meth:`replay` is the read-only half used by offline tooling
    (:func:`replay_shard`, the rebalance).  Durable writes are
    ``concurrent_writes`` (appends run on worker threads while the event
    loop serves) and honour the durable-before-visible ordering of
    :mod:`repro.cluster.storage`.
    """

    name = "journal"
    concurrent_writes = True
    compact_from_entries = True
    TUNING = frozenset({"fsync", "compact_min_bytes", "compact_factor"})
    #: every epoch's ``snapshot-eN.bin`` / ``journal-eN.log`` variants
    FILE_PREFIXES = ("snapshot", "journal")

    def __init__(
        self,
        directory: str | Path,
        fsync: bool = False,
        compact_min_bytes: int = COMPACT_MIN_BYTES,
        compact_factor: int = COMPACT_FACTOR,
        epoch: int = 0,
        create: bool = True,
    ) -> None:
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.epoch = epoch
        self.snapshot_path = self.directory / snapshot_filename(epoch)
        self.journal_path = self.directory / journal_filename(epoch)
        self.fsync = fsync
        self.compact_min_bytes = compact_min_bytes
        self.compact_factor = compact_factor
        self._journal_file = None
        self._journal_bytes = 0
        self._snapshot_bytes = 0
        # -- counters for stats() --
        self.records_appended = 0
        self.compactions = 0
        self.recovered_sets = 0
        self.recovered_records = 0
        self.skipped_records = 0
        self.truncated_bytes = 0
        self.tail_error = ""

    # -- StorageBackend protocol ----------------------------------------------
    def open_store(self) -> SetStore:
        """Recover snapshot-then-journal into a fresh live store.

        Replay runs with the persistence hook unset (recovered records
        must not be re-journaled); the hook is wired afterwards so any
        direct ``store.apply_diff`` / ``store.create`` is journal-first.
        """
        store = SetStore()
        self.recover(store)
        store.persistence = self
        return store

    def record_create(self, name: str, values, version: int = 0) -> None:
        """Durably append one full-state CREATE record."""
        self.append(encode_create(name, values, version=version))

    def record_diff(self, name: str, add=(), remove=()) -> None:
        """Durably append one DIFF record (caller validated the target)."""
        self.append(encode_diff(name, add=add, remove=remove))

    def iter_sets(self):
        """``(name, values, version)`` from the committed files.

        Re-reads snapshot + journal from disk (offline readers open
        their own ``create=False`` instance; the live owner's appends
        are flushed on every write, so its committed state is on disk
        too).  Replays via a scratch instance so this instance's
        recovery counters stay truthful."""
        scratch = JournalBackend(self.directory, epoch=self.epoch,
                                 create=False)
        store = SetStore()
        scratch.replay(store)
        yield from store.items()

    @classmethod
    def data_filenames(cls, epoch: int = 0) -> set:
        return {snapshot_filename(epoch), journal_filename(epoch)}

    @classmethod
    def stage(cls, directory, entries, epoch: int = 0,
              fsync: bool = True) -> int:
        return write_snapshot(directory, entries, epoch=epoch,
                              dir_fsync=fsync)

    # -- recovery --------------------------------------------------------------
    def recover(self, store: SetStore) -> None:
        """Load snapshot-then-journal into ``store`` and open for appends.

        The journal file is truncated back to its last complete record so
        post-recovery appends never follow garbage.  A snapshot with a
        missing or zero-length journal (an operator may legitimately
        delete a journal to drop its tail) recovers the snapshot state.
        """
        self.replay(store, truncate_tail=True)
        self._journal_file = open(self.journal_path, "ab")

    def replay(self, store: SetStore, truncate_tail: bool = False) -> None:
        """Load snapshot-then-journal into ``store`` without opening for
        appends — the read-only half of :meth:`recover`, reused by the
        offline rebalance (:func:`replay_shard`).

        Unless ``truncate_tail`` is set the files are not modified: a torn
        tail is merely skipped (and counted in :attr:`truncated_bytes`),
        which keeps offline planning passes side-effect free.
        """
        if self.snapshot_path.exists():
            data = self.snapshot_path.read_bytes()
            records, offset, error = read_records(data)
            if error:
                # snapshots are installed with an atomic rename; a torn
                # one means the storage itself is damaged, not a crash
                raise JournalCorruptError(
                    f"{self.snapshot_path}: {error} at byte {offset}"
                )
            for record in records:
                if record.op != OP_CREATE:
                    raise JournalCorruptError(
                        f"{self.snapshot_path}: non-CREATE record in snapshot"
                    )
                store.create(record.name, record.add, version=record.version)
            self._snapshot_bytes = len(data)
            self.recovered_sets = len(records)
        if self.journal_path.exists():
            data = self.journal_path.read_bytes()
            records, offset, error = read_records(data)
            self.tail_error = error
            for record in records:
                if record.op == OP_CREATE:
                    store.create(record.name, record.add,
                                 version=record.version)
                else:
                    try:
                        store.apply_diff(record.name, add=record.add,
                                         remove=record.remove)
                    except UnknownSetError:
                        # a diff with no preceding CREATE (writers journal
                        # before mutating and validate the target first,
                        # so only file surgery produces this) — skipping
                        # one record beats refusing the whole shard
                        self.skipped_records += 1
            self.recovered_records = len(records)
            if offset < len(data):
                self.truncated_bytes = len(data) - offset
                if truncate_tail:
                    with open(self.journal_path, "r+b") as fh:
                        fh.truncate(offset)
            self._journal_bytes = offset

    # -- writes ----------------------------------------------------------------
    def append(self, record: bytes) -> None:
        """Durably append one encoded record (caller serializes)."""
        assert self._journal_file is not None, "recover() before append()"
        self._journal_file.write(record)
        self._journal_file.flush()
        if self.fsync:
            os.fsync(self._journal_file.fileno())
        self._journal_bytes += len(record)
        self.records_appended += 1

    def should_compact(self) -> bool:
        threshold = max(
            self.compact_min_bytes, self.compact_factor * self._snapshot_bytes
        )
        return self._journal_bytes > threshold

    def compact(self, entries) -> None:
        """Rewrite the snapshot from ``(name, values, version)`` entries
        and reset the journal.

        The snapshot lands via write-temp / fsync / ``os.replace``; only
        after it is durably installed is the journal truncated, so a
        crash at any point leaves a recoverable pair of files.
        """
        assert self._journal_file is not None, "recover() before compact()"
        self._snapshot_bytes = write_snapshot(
            self.directory, entries, epoch=self.epoch, dir_fsync=self.fsync
        )
        self._journal_file.truncate(0)
        self._journal_file.flush()
        self._journal_bytes = 0
        self.compactions += 1

    def close(self) -> None:
        if self._journal_file is not None:
            self._journal_file.flush()
            if self.fsync:
                os.fsync(self._journal_file.fileno())
            self._journal_file.close()
            self._journal_file = None

    # -- introspection ---------------------------------------------------------
    @property
    def journal_bytes(self) -> int:
        return self._journal_bytes

    @property
    def snapshot_bytes(self) -> int:
        return self._snapshot_bytes

    def stats(self) -> dict:
        return {
            "epoch": self.epoch,
            "journal_bytes": self._journal_bytes,
            "snapshot_bytes": self._snapshot_bytes,
            "records_appended": self.records_appended,
            "compactions": self.compactions,
            "recovered_sets": self.recovered_sets,
            "recovered_records": self.recovered_records,
            "skipped_records": self.skipped_records,
            "truncated_bytes": self.truncated_bytes,
            "tail_error": self.tail_error,
        }


# The shared durable-first mutation protocol (``apply_mutation`` /
# ``compact_if_due``) lives in :mod:`repro.cluster.storage` now that it
# serves every backend; both names are re-imported above so historical
# ``from repro.cluster.journal import apply_mutation`` call sites keep
# working.

#: Pre-PR-6 name of :class:`JournalBackend` (plain alias here;
#: ``repro.cluster.ShardStorage`` additionally warns).
ShardStorage = JournalBackend


# -- offline helpers (rebalance / tooling) -------------------------------------

def write_snapshot(
    directory: str | Path, entries, epoch: int = 0, dir_fsync: bool = True
) -> int:
    """Atomically install ``(name, values, version)`` entries as the
    directory's snapshot for ``epoch``; returns the snapshot's byte size.

    The file itself is always fsync'd before the rename (a half-written
    snapshot must never become current); ``dir_fsync`` additionally
    fsyncs the directory entry, which the offline rebalance wants and a
    crash-only compaction may skip.  Shared by :meth:`ShardStorage.compact`
    and the rebalance staging pass.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / snapshot_filename(epoch)
    blob = b"".join(
        encode_create(name, values, version=version)
        for name, values, version in entries
    )
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    if dir_fsync:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return len(blob)


def replay_shard(
    directory: str | Path, epoch: int = 0
) -> tuple[SetStore, dict]:
    """Read-only offline replay of one shard directory at one epoch.

    Returns ``(store, stats)`` with the shard's recovered state and the
    recovery counters (``recovered_sets``, ``tail_error``, ...).  Truly
    read-only: nothing is modified or created — torn tails are skipped,
    not truncated, and a missing directory is an empty shard, not a
    mkdir — so a rebalance planning pass leaves the directory tree
    byte-identical.
    """
    storage = JournalBackend(directory, epoch=epoch, create=False)
    store = SetStore()
    storage.replay(store)
    return store, storage.stats()
