"""Per-shard durability: append-only apply-diff journal + snapshot.

Every mutation a shard accepts is appended to ``journal.log`` as one
length-prefixed, checksummed record *before* the session's RESULT is
acknowledged; periodically the whole shard state is rewritten as
``snapshot.bin`` (atomically, via ``os.replace``) and the journal is
truncated.  Recovery is therefore always *snapshot, then journal*: the
snapshot must parse completely (it was installed atomically), while the
journal tolerates a torn tail — a crash mid-append loses at most the
record being written, and replay stops cleanly at the last complete,
checksum-verified record.

Record framing (all integers big-endian, like :mod:`repro.service.wire`)::

    | payload_len (4) | checksum (4) | payload ... |

where ``checksum`` is the paper's set checksum ``c(S)`` of §2.2.3
(:func:`repro.core.checksum.set_checksum`) taken over the payload bytes.
Payloads::

    CREATE:  op=1 | name_len (2) | name | version (8) | count (4) | elements
    DIFF:    op=2 | name_len (2) | name | n_add (4) | n_rm (4) | adds | rms

Elements are 8-byte big-endian unsigned.  A snapshot file is simply a
sequence of CREATE records (one per named set, version included), so one
codec serves both files and replaying a snapshot is replaying a journal.

File names are *epoch-qualified*: layout epoch 0 (the pre-manifest
layout) uses the bare ``snapshot.bin`` / ``journal.log`` names, epoch
``e > 0`` uses ``snapshot-e{e}.bin`` / ``journal-e{e}.log``.  The
cluster manifest (:mod:`repro.cluster.manifest`) records which epoch
each shard directory is at; a rebalance stages a whole new epoch's
files next to the old ones and commits by atomically replacing the
manifest, so a crash mid-rebalance never damages the current layout
(see :mod:`repro.cluster.rebalance`).
"""

from __future__ import annotations

import asyncio
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.checksum import set_checksum
from repro.errors import ReproError
from repro.service.store import SetStore, UnknownSetError

OP_CREATE = 1
OP_DIFF = 2

_HEADER = struct.Struct("!II")

#: Upper bound on one record's payload — a corrupt length prefix must not
#: make replay attempt a multi-gigabyte read.
MAX_RECORD_BYTES = 1 << 28

#: Compaction policy: rewrite the snapshot once the journal outgrows
#: ``max(COMPACT_MIN_BYTES, COMPACT_FACTOR * len(snapshot))``.
COMPACT_MIN_BYTES = 1 << 16
COMPACT_FACTOR = 4


class JournalCorruptError(ReproError):
    """A snapshot file failed to parse (journals tolerate torn tails)."""


def snapshot_filename(epoch: int = 0) -> str:
    """The snapshot file name for a layout epoch (0 = legacy bare name)."""
    return "snapshot.bin" if epoch == 0 else f"snapshot-e{epoch}.bin"


def journal_filename(epoch: int = 0) -> str:
    """The journal file name for a layout epoch (0 = legacy bare name)."""
    return "journal.log" if epoch == 0 else f"journal-e{epoch}.log"


@dataclass
class Record:
    """One decoded journal record."""

    op: int
    name: str
    version: int = 0                      #: CREATE only
    add: np.ndarray = field(default_factory=lambda: np.empty(0, np.uint64))
    remove: np.ndarray = field(default_factory=lambda: np.empty(0, np.uint64))


def _checksum(payload: bytes) -> int:
    """The §2.2.3 set checksum over *position-weighted* payload bytes.

    ``c(S)`` is additive, so summing raw bytes would be blind to
    reorderings; weighting each byte by its 1-based offset (c(S) over the
    multiset ``{(i+1) * b_i}``, Fletcher-style) makes transpositions and
    shifted splices change the sum.  Compensating corruptions can still
    collide (it is a sum, not a CRC), but torn tails are additionally
    caught by the length prefix and the structural decode."""
    data = np.frombuffer(payload, dtype=np.uint8).astype(np.uint64)
    weights = np.arange(1, len(data) + 1, dtype=np.uint64)
    return set_checksum(data * weights, log_u=32)


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), _checksum(payload)) + payload


def _name_bytes(name: str) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ReproError(f"set name too long to journal: {name[:40]!r}...")
    return struct.pack("!H", len(raw)) + raw


def _elements_bytes(values) -> bytes:
    return np.ascontiguousarray(
        np.fromiter((int(v) for v in values), dtype=np.uint64)
        if not isinstance(values, np.ndarray)
        else values,
        dtype=">u8",
    ).tobytes()


def encode_create(name: str, values, version: int = 0) -> bytes:
    """A full-state record: replaces the named set on replay."""
    body = _elements_bytes(values)
    payload = (
        struct.pack("!B", OP_CREATE)
        + _name_bytes(name)
        + struct.pack("!QI", version, len(body) // 8)
        + body
    )
    return _frame(payload)


def encode_diff(name: str, add=(), remove=()) -> bytes:
    """An apply-diff record: merged into the named set on replay."""
    add_body = _elements_bytes(add)
    rm_body = _elements_bytes(remove)
    payload = (
        struct.pack("!B", OP_DIFF)
        + _name_bytes(name)
        + struct.pack("!II", len(add_body) // 8, len(rm_body) // 8)
        + add_body
        + rm_body
    )
    return _frame(payload)


def _decode_payload(payload: bytes) -> Record:
    (op,) = struct.unpack_from("!B", payload)
    (name_len,) = struct.unpack_from("!H", payload, 1)
    offset = 3 + name_len
    name = payload[3:offset].decode("utf-8")
    if op == OP_CREATE:
        version, count = struct.unpack_from("!QI", payload, offset)
        offset += 12
        if len(payload) != offset + 8 * count:
            raise ReproError("CREATE record length mismatch")
        values = np.frombuffer(payload, dtype=">u8", count=count,
                               offset=offset).astype(np.uint64)
        return Record(op=op, name=name, version=version, add=values)
    if op == OP_DIFF:
        n_add, n_rm = struct.unpack_from("!II", payload, offset)
        offset += 8
        if len(payload) != offset + 8 * (n_add + n_rm):
            raise ReproError("DIFF record length mismatch")
        add = np.frombuffer(payload, dtype=">u8", count=n_add,
                            offset=offset).astype(np.uint64)
        remove = np.frombuffer(payload, dtype=">u8", count=n_rm,
                               offset=offset + 8 * n_add).astype(np.uint64)
        return Record(op=op, name=name, add=add, remove=remove)
    raise ReproError(f"unknown journal op {op}")


def read_records(data: bytes) -> tuple[list[Record], int, str]:
    """Decode back-to-back records, stopping at the first damaged one.

    Returns ``(records, clean_offset, tail_error)`` where ``clean_offset``
    is the byte offset just past the last complete, verified record and
    ``tail_error`` describes why scanning stopped ("" when the whole
    buffer parsed).  This is the crash-tolerance contract: a torn tail is
    data loss bounded by one record, never a failed recovery.
    """
    records: list[Record] = []
    view = memoryview(data)
    offset = 0
    while offset < len(view):
        if offset + _HEADER.size > len(view):
            return records, offset, "truncated record header"
        length, checksum = _HEADER.unpack_from(view, offset)
        if length > MAX_RECORD_BYTES:
            return records, offset, f"implausible record length {length}"
        start = offset + _HEADER.size
        if start + length > len(view):
            return records, offset, "truncated record body"
        payload = bytes(view[start : start + length])
        if _checksum(payload) != checksum:
            return records, offset, "record checksum mismatch"
        try:
            records.append(_decode_payload(payload))
        except (ReproError, UnicodeDecodeError, struct.error) as exc:
            return records, offset, f"undecodable record: {exc}"
        offset = start + length
    return records, offset, ""


class ShardStorage:
    """One shard's on-disk state: ``snapshot.bin`` + ``journal.log``.

    The caller owns serialization — appends must not interleave — and
    decides *when* to compact; this class owns the bytes and the
    crash-safety protocol.  There is exactly one writing owner per shard
    directory: the inline shard worker task
    (:mod:`repro.cluster.router`) or the shard's worker subprocess
    (:mod:`repro.cluster.proc`), selected by the store's executor.

    Lifecycle: :meth:`recover` (replay + open for appends), then any
    number of :meth:`append` / :meth:`compact` calls, then
    :meth:`close` (idempotent).  :meth:`replay` is the read-only half
    used by offline tooling (:func:`replay_shard`, the rebalance).
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: bool = False,
        compact_min_bytes: int = COMPACT_MIN_BYTES,
        compact_factor: int = COMPACT_FACTOR,
        epoch: int = 0,
        create: bool = True,
    ) -> None:
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.epoch = epoch
        self.snapshot_path = self.directory / snapshot_filename(epoch)
        self.journal_path = self.directory / journal_filename(epoch)
        self.fsync = fsync
        self.compact_min_bytes = compact_min_bytes
        self.compact_factor = compact_factor
        self._journal_file = None
        self._journal_bytes = 0
        self._snapshot_bytes = 0
        # -- counters for stats() --
        self.records_appended = 0
        self.compactions = 0
        self.recovered_sets = 0
        self.recovered_records = 0
        self.skipped_records = 0
        self.truncated_bytes = 0
        self.tail_error = ""

    # -- recovery --------------------------------------------------------------
    def recover(self, store: SetStore) -> None:
        """Load snapshot-then-journal into ``store`` and open for appends.

        The journal file is truncated back to its last complete record so
        post-recovery appends never follow garbage.  A snapshot with a
        missing or zero-length journal (an operator may legitimately
        delete a journal to drop its tail) recovers the snapshot state.
        """
        self.replay(store, truncate_tail=True)
        self._journal_file = open(self.journal_path, "ab")

    def replay(self, store: SetStore, truncate_tail: bool = False) -> None:
        """Load snapshot-then-journal into ``store`` without opening for
        appends — the read-only half of :meth:`recover`, reused by the
        offline rebalance (:func:`replay_shard`).

        Unless ``truncate_tail`` is set the files are not modified: a torn
        tail is merely skipped (and counted in :attr:`truncated_bytes`),
        which keeps offline planning passes side-effect free.
        """
        if self.snapshot_path.exists():
            data = self.snapshot_path.read_bytes()
            records, offset, error = read_records(data)
            if error:
                # snapshots are installed with an atomic rename; a torn
                # one means the storage itself is damaged, not a crash
                raise JournalCorruptError(
                    f"{self.snapshot_path}: {error} at byte {offset}"
                )
            for record in records:
                if record.op != OP_CREATE:
                    raise JournalCorruptError(
                        f"{self.snapshot_path}: non-CREATE record in snapshot"
                    )
                store.create(record.name, record.add, version=record.version)
            self._snapshot_bytes = len(data)
            self.recovered_sets = len(records)
        if self.journal_path.exists():
            data = self.journal_path.read_bytes()
            records, offset, error = read_records(data)
            self.tail_error = error
            for record in records:
                if record.op == OP_CREATE:
                    store.create(record.name, record.add,
                                 version=record.version)
                else:
                    try:
                        store.apply_diff(record.name, add=record.add,
                                         remove=record.remove)
                    except UnknownSetError:
                        # a diff with no preceding CREATE (writers journal
                        # before mutating and validate the target first,
                        # so only file surgery produces this) — skipping
                        # one record beats refusing the whole shard
                        self.skipped_records += 1
            self.recovered_records = len(records)
            if offset < len(data):
                self.truncated_bytes = len(data) - offset
                if truncate_tail:
                    with open(self.journal_path, "r+b") as fh:
                        fh.truncate(offset)
            self._journal_bytes = offset

    # -- writes ----------------------------------------------------------------
    def append(self, record: bytes) -> None:
        """Durably append one encoded record (caller serializes)."""
        assert self._journal_file is not None, "recover() before append()"
        self._journal_file.write(record)
        self._journal_file.flush()
        if self.fsync:
            os.fsync(self._journal_file.fileno())
        self._journal_bytes += len(record)
        self.records_appended += 1

    def should_compact(self) -> bool:
        threshold = max(
            self.compact_min_bytes, self.compact_factor * self._snapshot_bytes
        )
        return self._journal_bytes > threshold

    def compact(self, entries) -> None:
        """Rewrite the snapshot from ``(name, values, version)`` entries
        and reset the journal.

        The snapshot lands via write-temp / fsync / ``os.replace``; only
        after it is durably installed is the journal truncated, so a
        crash at any point leaves a recoverable pair of files.
        """
        assert self._journal_file is not None, "recover() before compact()"
        self._snapshot_bytes = write_snapshot(
            self.directory, entries, epoch=self.epoch, dir_fsync=self.fsync
        )
        self._journal_file.truncate(0)
        self._journal_file.flush()
        self._journal_bytes = 0
        self.compactions += 1

    def close(self) -> None:
        if self._journal_file is not None:
            self._journal_file.flush()
            if self.fsync:
                os.fsync(self._journal_file.fileno())
            self._journal_file.close()
            self._journal_file = None

    # -- introspection ---------------------------------------------------------
    @property
    def journal_bytes(self) -> int:
        return self._journal_bytes

    @property
    def snapshot_bytes(self) -> int:
        return self._snapshot_bytes

    def stats(self) -> dict:
        return {
            "epoch": self.epoch,
            "journal_bytes": self._journal_bytes,
            "snapshot_bytes": self._snapshot_bytes,
            "records_appended": self.records_appended,
            "compactions": self.compactions,
            "recovered_sets": self.recovered_sets,
            "recovered_records": self.recovered_records,
            "skipped_records": self.skipped_records,
            "truncated_bytes": self.truncated_bytes,
            "tail_error": self.tail_error,
        }


# -- the shared journal-first mutation protocol --------------------------------

async def apply_mutation(store: SetStore, storage: ShardStorage | None,
                         op: str, args: tuple):
    """Apply one shard mutation with the journal-first protocol.

    This is the *single* definition of how a shard worker mutates —
    the inline executor's task loop and the subprocess executor's child
    both route through it, which is what keeps the two executors'
    stores and journals bit-for-bit interchangeable:

    * ``apply`` ``(name, add, remove)`` — raise the store's own
      :class:`UnknownSetError` *before* journaling (a DIFF record must
      never precede its CREATE), skip the disk write for empty diffs
      (converged re-sync passes change nothing), journal, then mutate;
      returns the changed-element count.
    * ``create`` / ``restore`` ``(name, values, version)`` — journal the
      full-state CREATE record, then replace the set.
    * ``sync`` — a no-op ordering barrier.

    The record hits the disk *before* the store mutates: a failed append
    leaves the store untouched, and no concurrent snapshot can observe
    state that a crash-recovery would roll back.  Appends run in the
    default thread-pool executor so journals commit in parallel across
    shards while the event loop keeps serving.
    """
    loop = asyncio.get_running_loop()
    if op == "apply":
        name, add, remove = args
        if name not in store:
            # raise the store's own error *before* journaling
            store.apply_diff(name)
        if storage is not None and (len(add) or len(remove)):
            record = encode_diff(name, add, remove)
            await loop.run_in_executor(None, storage.append, record)
        return store.apply_diff(name, add=add, remove=remove)
    if op in ("create", "restore"):
        name, values, version = args
        if storage is not None:
            record = encode_create(name, values, version=version)
            await loop.run_in_executor(None, storage.append, record)
        store.create(name, values, version=version)
        return None
    if op == "sync":
        return None
    raise ReproError(f"unknown shard mutation op {op!r}")


async def compact_if_due(store: SetStore,
                         storage: ShardStorage | None) -> str | None:
    """Run a due background compaction; shared by both executors.

    Returns ``None`` when no compaction was due, ``""`` after a
    successful one, and the error string after a failed one — a failed
    compaction must never be charged to the (already durable, already
    applied) mutation that happened to trigger it.
    """
    if storage is None or not storage.should_compact():
        return None
    try:
        entries = store.items()
        await asyncio.get_running_loop().run_in_executor(
            None, storage.compact, entries
        )
        return ""
    except Exception as exc:
        return f"{type(exc).__name__}: {exc}"


# -- offline helpers (rebalance / tooling) -------------------------------------

def write_snapshot(
    directory: str | Path, entries, epoch: int = 0, dir_fsync: bool = True
) -> int:
    """Atomically install ``(name, values, version)`` entries as the
    directory's snapshot for ``epoch``; returns the snapshot's byte size.

    The file itself is always fsync'd before the rename (a half-written
    snapshot must never become current); ``dir_fsync`` additionally
    fsyncs the directory entry, which the offline rebalance wants and a
    crash-only compaction may skip.  Shared by :meth:`ShardStorage.compact`
    and the rebalance staging pass.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / snapshot_filename(epoch)
    blob = b"".join(
        encode_create(name, values, version=version)
        for name, values, version in entries
    )
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    if dir_fsync:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return len(blob)


def replay_shard(
    directory: str | Path, epoch: int = 0
) -> tuple[SetStore, dict]:
    """Read-only offline replay of one shard directory at one epoch.

    Returns ``(store, stats)`` with the shard's recovered state and the
    recovery counters (``recovered_sets``, ``tail_error``, ...).  Truly
    read-only: nothing is modified or created — torn tails are skipped,
    not truncated, and a missing directory is an empty shard, not a
    mkdir — so a rebalance planning pass leaves the directory tree
    byte-identical.
    """
    storage = ShardStorage(directory, epoch=epoch, create=False)
    store = SetStore()
    storage.replay(store)
    return store, storage.stats()
