"""Shard replication: log shipping, quorum acks, follower promotion.

Journals are per-shard and local, so before this module a dead disk
lost the shard outright — crash recovery (PR 3) only ever survived the
*process* dying.  Replication closes that hole by keeping ``R`` extra
copies of every shard's durable state in follower replica directories
(``shard-NN/follower-KK``, see :func:`repro.cluster.manifest.replica_dir`)
and streaming every acknowledged mutation to them in ack order.

The design in one paragraph
---------------------------

The primary ships **logical operations** — the same ``(op, args)``
tuples that :func:`repro.cluster.storage.apply_mutation` consumes — so
each follower produces backend-native durable records (journal appends /
SQLite transactions) for its own copy, and the two storage backends
replicate identically.  A follower that (re)starts never trusts its
local files: it is wiped (:meth:`StorageBackend.discard`) and
re-bootstrapped from an atomically-staged snapshot of the primary's
live state (:meth:`StorageBackend.stage`), which makes restart-in-any-
order safe — stale state is never double-applied on top of.  Progress
is tracked by a per-replica durable cursor file written *after* the op
is durable and *before* the op is counted as acknowledged, so a
replica's cursor never overstates what its files contain.

Durability modes
----------------

* ``async`` (default): the client ack only waits for the primary's own
  durable write, exactly as before; shipping is fire-and-forget.  A
  dead primary *disk* may lose the un-shipped tail.
* ``quorum``: the ack additionally waits until a strict majority of
  the ``R + 1`` replicas — :func:`quorum_size` — is durable (the
  primary counts as one).  A quorum-acknowledged mutation survives the
  loss of any minority of replicas, including the primary's disk: the
  election (:func:`elect_replica`) picks the replica with the highest
  durable cursor, and every quorum-acked op is at or below the cursor
  of at least ``quorum - 1`` follower replicas.

Failover
--------

Two promotion paths share the election:

* **startup** — if the manifest's active replica directory is
  unreadable (:class:`StorageCorruptError`), ``ClusterStore.start()``
  elects among the survivors and commits the winner by atomically
  rewriting ``manifest.primary_replica`` (the *only* commit point);
* **online** (subprocess executor) — when a primary worker stays down
  past its respawn budget (``promote_after`` consecutive failed
  respawns), the supervisor path in :mod:`repro.cluster.router` stops
  the followers, elects, commits the manifest, and respawns the worker
  on the promoted directory; the demoted directories rejoin as
  followers and re-bootstrap.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

from repro.cluster.manifest import replica_dir
from repro.cluster.storage import (
    apply_mutation,
    backend_class,
    open_backend,
)
from repro.errors import ReproError
from repro.obs.logs import get_logger

log = get_logger("replication")

#: How long a quorum-mode ack waits for follower durability before the
#: session is failed (the mutation *is* durable on the primary — the
#: client retries, at-least-once, like every other shed path).
QUORUM_TIMEOUT_S = 30.0

#: First retry delay after a follower bootstrap/apply failure; doubles
#: up to the cap, mirroring the worker respawn backoff.
FOLLOWER_BACKOFF_S = 0.25
FOLLOWER_BACKOFF_CAP_S = 5.0

#: The durable cursor file inside a replica directory.  Deliberately
#: outside every backend's ``FILE_PREFIXES`` so a wipe-and-bootstrap
#: (or the rebalance sweep) never deletes the replica's own data files
#: by way of its cursor.
CURSOR_NAME = "repl-cursor.json"


class ReplicationError(ReproError):
    """A replication-layer failure (quorum loss, no electable replica)."""


class QuorumTimeoutError(ReplicationError):
    """Follower durability did not reach quorum within the timeout.

    The mutation is durable on the primary but NOT quorum-acknowledged;
    the session errors out so the client retries."""


def quorum_size(total_replicas: int) -> int:
    """Strict majority of ``total_replicas`` (primary + followers).

    ``⌈(R + 1) / 2⌉``: 1 of 1, 2 of 2, 2 of 3, 3 of 4, 3 of 5 — the
    DLS-style majority so any two quorums intersect."""
    return total_replicas // 2 + 1


# -- durable replica cursors ---------------------------------------------------

def read_cursor(directory: str | Path) -> int:
    """The replica's durable cursor, or ``-1`` when none was written."""
    path = Path(directory) / CURSOR_NAME
    try:
        return int(json.loads(path.read_text())["seq"])
    except (OSError, ValueError, KeyError, TypeError):
        return -1


def write_cursor(directory: str | Path, seq: int,
                 fsync: bool = False) -> None:
    """Atomically persist the replica cursor (write-temp / replace).

    Ordering contract: called only after the op at ``seq`` is durable
    in the replica's backend, and the op is only *acknowledged* (and
    counted toward a quorum) after this returns — so a cursor can
    understate a replica's contents but never overstate them, which is
    what makes electing by cursor safe."""
    directory = Path(directory)
    path = directory / CURSOR_NAME
    tmp = directory / (CURSOR_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump({"seq": seq}, fh)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)


# -- election ------------------------------------------------------------------

def has_data(directory: str | Path, epoch: int, storage: str) -> bool:
    """Whether a replica directory holds any of its backend's data files
    at ``epoch`` (an empty directory is *readable* but carries nothing —
    startup treats an empty active replica as failed when a follower has
    state, since a replaced disk comes up blank, not corrupt)."""
    cls = backend_class(storage)
    directory = Path(directory)
    return any(
        (directory / fn).exists() for fn in cls.data_filenames(epoch)
    )


def probe_replica(directory: str | Path, epoch: int, storage: str) -> bool:
    """Whether a replica directory's committed state is fully readable.

    A directory with no data files is readable-empty (a follower that
    never bootstrapped); damage anywhere in the committed state makes
    it ineligible."""
    if not has_data(directory, epoch, storage):
        return True
    try:
        backend = open_backend(storage, directory, epoch=epoch, create=False)
        try:
            for _ in backend.iter_sets():
                pass
        finally:
            backend.close()
    except Exception:
        return False
    return True


def elect_replica(
    data_dir: str | Path, shard: int, epoch: int, storage: str,
    replicas: int, exclude: frozenset | set = frozenset(),
) -> int:
    """The most-advanced *readable* replica of one shard.

    Candidates are every replica index ``0..replicas`` not in
    ``exclude`` (promotion excludes the failed active replica);
    advancement is the durable cursor file, ties break toward the
    lowest index for determinism.  Blocking — callers on the event
    loop run it in an executor.  Raises :class:`ReplicationError` when
    no candidate is readable."""
    best, best_cursor = None, None
    for replica in range(replicas + 1):
        if replica in exclude:
            continue
        directory = replica_dir(data_dir, shard, replica)
        if not probe_replica(directory, epoch, storage):
            continue
        cursor = read_cursor(directory)
        if best is None or cursor > best_cursor:
            best, best_cursor = replica, cursor
    if best is None:
        raise ReplicationError(
            f"shard {shard}: no readable replica to promote "
            f"(candidates 0..{replicas}, excluded {sorted(exclude)})"
        )
    return best


# -- follower appliers ---------------------------------------------------------

class InlineApplier:
    """A follower living in the primary's process: its own backend +
    store in the replica directory, mutated through the one shared
    durable-first protocol (:func:`apply_mutation`)."""

    def __init__(self, directory: Path, epoch: int, storage: str,
                 storage_kwargs: dict) -> None:
        self.directory = Path(directory)
        self.epoch = epoch
        self.storage_name = storage
        self.storage_kwargs = dict(storage_kwargs)
        self.storage = None
        self.store = None

    async def restart(self, entries) -> None:
        """Wipe, stage ``entries`` as the new base state, reopen.

        The wipe and stage are pure file I/O and run off the loop; the
        backend itself is opened — and every later apply and close runs
        — on the event-loop thread, exactly like the router's inline
        primaries (``sqlite3`` connections refuse cross-thread use)."""
        self._close_sync()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._stage_sync, entries)
        # repro: ignore[blocking-call-in-async] -- recovery of the
        # just-staged snapshot; bounded, and bootstraps are rare
        self.storage = open_backend(
            self.storage_name, self.directory, epoch=self.epoch,
            create=True, **self.storage_kwargs,
        )
        self.store = self.storage.open_store()

    def _stage_sync(self, entries) -> None:
        cls = backend_class(self.storage_name)
        self.directory.mkdir(parents=True, exist_ok=True)
        cls.discard(self.directory)
        # the old cursor goes with the old state: a crash between the
        # stage and the fresh cursor write must read as "never
        # bootstrapped" (-1), not as the stale cursor overstating the
        # now-empty directory
        (self.directory / CURSOR_NAME).unlink(missing_ok=True)
        fsync = bool(self.storage_kwargs.get("fsync", False))
        cls.stage(self.directory, entries, epoch=self.epoch, fsync=fsync)

    async def apply(self, op: str, args: tuple) -> None:
        await apply_mutation(self.store, self.storage, op, args)

    async def close(self, graceful: bool = True) -> None:
        # on the loop thread: the connection was opened here
        self._close_sync()

    def _close_sync(self) -> None:
        if self.storage is not None:
            try:
                self.storage.close()
            except Exception:
                pass
            self.storage = None
            self.store = None


class ProcApplier:
    """A follower as a worker subprocess owning the replica directory,
    driven over the same token-authenticated loopback RPC as primary
    workers — the parent stages the bootstrap snapshot, the child
    replays it and applies shipped ops durable-first."""

    def __init__(self, supervisor, shard_id: int, directory: Path,
                 epoch: int, storage: str, storage_kwargs: dict,
                 on_death=None) -> None:
        self.supervisor = supervisor
        self.shard_id = shard_id
        self.directory = Path(directory)
        self.epoch = epoch
        self.storage_name = storage
        self.storage_kwargs = dict(storage_kwargs)
        self.on_death = on_death
        self.handle = None

    async def restart(self, entries) -> None:
        if self.handle is not None:
            await self.handle.close(graceful=False)
            self.handle = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._stage_sync, entries)
        handle, _entries, _stats = await self.supervisor.spawn(
            self.shard_id, self.directory, self.epoch,
            on_death=self._on_death, role=self.directory.name,
        )
        self.handle = handle

    def _stage_sync(self, entries) -> None:
        cls = backend_class(self.storage_name)
        self.directory.mkdir(parents=True, exist_ok=True)
        cls.discard(self.directory)
        # see InlineApplier._restart_sync: stale cursor goes with the
        # stale state, so a crash mid-bootstrap reads as -1
        (self.directory / CURSOR_NAME).unlink(missing_ok=True)
        fsync = bool(self.storage_kwargs.get("fsync", False))
        cls.stage(self.directory, entries, epoch=self.epoch, fsync=fsync)

    def _on_death(self, shard_id=None) -> None:
        # WorkerHandle's reader task passes the shard id; the follower
        # driver only needs the wake-up
        if self.on_death is not None:
            self.on_death()

    async def apply(self, op: str, args: tuple) -> None:
        from repro.cluster.proc import RpcType

        rpc = {
            "apply": RpcType.APPLY,
            "create": RpcType.CREATE,
            "restore": RpcType.RESTORE,
        }[op]
        await self.handle.call(rpc, (args, None))

    async def close(self, graceful: bool = True) -> None:
        if self.handle is not None:
            await self.handle.close(graceful=graceful)
            self.handle = None


# -- the follower driver -------------------------------------------------------

class Follower:
    """One follower replica: an ordered ship queue and the driver task
    that bootstraps, applies, and advances the durable cursor.

    Lifecycle: constructed dead (``alive=False``); the driver's first
    act is a snapshot bootstrap.  Any failure — bootstrap, apply, or
    the worker process dying — marks it dead again, and the driver
    retries the wipe-and-bootstrap with exponential backoff.  The ack
    ordering inside :meth:`_apply_one` (durable apply, then durable
    cursor, then count the ack) is what :func:`elect_replica` relies
    on."""

    def __init__(self, repl: "ShardReplication", replica: int,
                 directory: Path, applier) -> None:
        self._repl = repl
        self.replica = replica
        self.directory = Path(directory)
        self.applier = applier
        self.queue: asyncio.Queue = asyncio.Queue()
        self.task: asyncio.Task | None = None
        self.alive = False
        self.acked_seq = -1
        self.bootstraps = 0
        self.last_error = ""
        self._stopping = False
        self._stop_event = asyncio.Event()
        #: death-notice generation: bumped by every mark_dead so a
        #: bootstrap that was already in flight when the notice arrived
        #: is discarded and redone (its snapshot may predate the event
        #: that made the resync necessary)
        self._gen = 0
        self._fsync = bool(repl.storage_kwargs.get("fsync", False))

    def start(self) -> None:
        self.task = asyncio.ensure_future(self._run())

    def enqueue(self, op: str, args: tuple, seq: int) -> None:
        if self._stopping:
            return
        self.queue.put_nowait(("op", op, args, seq))

    def mark_dead(self, error: str) -> None:
        """Out-of-band death or resync notice — the follower worker
        process exited, or the primary's state was rebuilt behind the
        ship stream (a respawned worker's journal replay can surface a
        mutation the stream never carried).  Forces a wipe-and-
        re-bootstrap even if one is already in flight."""
        if self._stopping:
            return
        self._gen += 1
        self.alive = False
        self.last_error = error
        self.queue.put_nowait(("wake", None, None, -1))

    async def stop(self, graceful: bool = True) -> None:
        """Drain queued ops (when alive and ``graceful``) and shut the
        applier down.  A dead follower exits without draining — it
        would re-bootstrap on next start anyway."""
        if self._stopping:
            return
        self._stopping = True
        self._stop_event.set()
        self.queue.put_nowait(("stop", None, None, -1))
        if self.task is not None:
            await self.task
            self.task = None
        await self.applier.close(graceful=graceful and self.alive)
        self.alive = False

    async def _run(self) -> None:
        delay = 0.0
        while True:
            if not self.alive:
                if self._stopping:
                    return
                if delay:
                    try:
                        await asyncio.wait_for(
                            self._stop_event.wait(), delay
                        )
                    except asyncio.TimeoutError:
                        pass
                    if self._stopping:
                        return
                gen = self._gen
                entries, seq = self._repl.bootstrap_source()
                try:
                    await self.applier.restart(entries)
                    await self._write_cursor(seq)
                except Exception as exc:
                    if self._stopping:
                        return
                    self.last_error = f"{type(exc).__name__}: {exc}"
                    delay = min(
                        max(delay * 2, self._repl.backoff_s),
                        FOLLOWER_BACKOFF_CAP_S,
                    )
                    continue
                if self._gen != gen:
                    # a death notice raced the bootstrap: its snapshot
                    # may predate the notice's cause — redo immediately
                    delay = 0.0
                    continue
                self.acked_seq = seq
                self.alive = True
                self.bootstraps += 1
                self.last_error = ""
                delay = 0.0
                self._repl._on_ack()
                continue
            item = await self.queue.get()
            kind, op, args, seq = item
            if kind == "stop":
                return
            if kind == "wake":
                continue
            if seq <= self.acked_seq:
                continue  # re-shipped prefix after a bootstrap
            try:
                await self._apply_one(op, args, seq)
            except Exception as exc:
                if self._stopping:
                    return
                self.alive = False
                self.last_error = f"{type(exc).__name__}: {exc}"
                delay = self._repl.backoff_s
                log.warning(
                    "follower apply failed; re-bootstrapping",
                    extra={
                        "shard": self._repl.shard_id,
                        "replica": self.replica,
                        "error": self.last_error,
                    },
                )
                continue
            self.acked_seq = seq
            self._repl._on_ack()

    async def _apply_one(self, op: str, args: tuple, seq: int) -> None:
        # durable apply first, durable cursor second, ack third — the
        # cursor must never overstate the replica's applied prefix
        await self.applier.apply(op, args)
        await self._write_cursor(seq)

    async def _write_cursor(self, seq: int) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, write_cursor, self.directory, seq, self._fsync
        )

    def stats(self) -> dict:
        return {
            "replica": self.replica,
            "alive": self.alive,
            "acked_seq": self.acked_seq,
            "lag": max(0, self._repl.seq - self.acked_seq),
            "bootstraps": self.bootstraps,
            "last_error": self.last_error,
        }


# -- per-shard replication state ----------------------------------------------

class ShardReplication:
    """The primary side of one shard's replication: the shipped-op
    sequence, the follower set, and quorum accounting.

    ``ship()`` must be called in ack order, synchronously after the
    primary's durable apply (no ``await`` in between) — the inline
    worker loop does it right after :func:`apply_mutation` returns,
    the subprocess executor inside the reply callback that also
    updates the read mirror.  That makes ``bootstrap_source()`` —
    which captures ``(entries_fn(), seq)`` in one event-loop step —
    a consistent snapshot by construction.
    """

    def __init__(
        self, shard_id: int, replicas: int, mode: str,
        entries_fn, active_replica: int = 0, seq0: int = 0,
        storage_kwargs: dict | None = None,
        backoff_s: float = FOLLOWER_BACKOFF_S,
        quorum_timeout_s: float = QUORUM_TIMEOUT_S,
    ) -> None:
        self.shard_id = shard_id
        self.replicas = replicas
        self.mode = mode
        self.entries_fn = entries_fn
        self.active_replica = active_replica
        self.seq = seq0
        self.storage_kwargs = dict(storage_kwargs or {})
        self.backoff_s = backoff_s
        self.quorum_timeout_s = quorum_timeout_s
        self.quorum = (
            quorum_size(replicas + 1) if mode == "quorum" else 1
        )
        self.promotions = 0
        self.followers: list[Follower] = []
        self._waiters: list = []

    # -- wiring ---------------------------------------------------------------
    def add_follower(self, replica: int, directory: Path,
                     applier) -> Follower:
        follower = Follower(self, replica, directory, applier)
        self.followers.append(follower)
        return follower

    def start(self) -> None:
        for follower in self.followers:
            follower.start()

    async def stop(self, graceful: bool = True) -> None:
        for follower in self.followers:
            await follower.stop(graceful=graceful)
        self.followers = []
        self._fail_waiters("replication stopped")

    def bootstrap_source(self):
        """``(entries, seq)`` captured in one event-loop step — see the
        class docstring for why this is ship-consistent."""
        return self.entries_fn(), self.seq

    # -- the ship / ack path --------------------------------------------------
    def ship(self, op: str, args: tuple) -> int:
        """Enqueue one primary-durable op to every follower; returns
        its sequence number for :meth:`wait_durable`."""
        self.seq += 1
        for follower in self.followers:
            follower.enqueue(op, args, self.seq)
        return self.seq

    def durable_seq(self) -> int:
        """The highest sequence number that is durable on a quorum."""
        need = self.quorum - 1
        if need <= 0:
            return self.seq
        acks = sorted(
            (f.acked_seq for f in self.followers), reverse=True
        )
        if len(acks) < need:
            return -1
        return acks[need - 1]

    async def wait_durable(self, seq: int) -> None:
        """Block until ``seq`` is quorum-durable (no-op in async mode).

        Raises :class:`QuorumTimeoutError` after ``quorum_timeout_s``:
        the op stays durable on the primary, but the session is failed
        rather than acknowledged below quorum."""
        if self.durable_seq() >= seq:
            return
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append((seq, fut))
        try:
            await asyncio.wait_for(fut, self.quorum_timeout_s)
        except asyncio.TimeoutError:
            raise QuorumTimeoutError(
                f"shard {self.shard_id}: seq {seq} not durable on "
                f"{self.quorum} of {self.replicas + 1} replicas within "
                f"{self.quorum_timeout_s:.0f}s "
                f"({sum(f.alive for f in self.followers)} followers live)"
            ) from None
        finally:
            self._waiters = [
                (s, f) for (s, f) in self._waiters if not f.done()
            ]

    def _on_ack(self) -> None:
        durable = self.durable_seq()
        pending = []
        for seq, fut in self._waiters:
            if seq <= durable and not fut.done():
                fut.set_result(None)
            elif not fut.done():
                pending.append((seq, fut))
        self._waiters = pending

    def _fail_waiters(self, reason: str) -> None:
        for _seq, fut in self._waiters:
            if not fut.done():
                fut.set_exception(ReplicationError(reason))
        self._waiters = []

    # -- introspection --------------------------------------------------------
    def quorum_ok(self) -> bool:
        """Whether an ack could currently reach quorum (primary plus
        live followers).  Always true in async mode."""
        if self.mode != "quorum":
            return True
        return 1 + sum(f.alive for f in self.followers) >= self.quorum

    def stats(self) -> dict:
        return {
            "replicas": self.replicas,
            "mode": self.mode,
            "quorum": self.quorum,
            "active_replica": self.active_replica,
            "seq": self.seq,
            "durable_seq": min(self.durable_seq(), self.seq),
            "quorum_ok": self.quorum_ok(),
            "promotions": self.promotions,
            "followers": [f.stats() for f in self.followers],
        }
