"""Admission control: bounded work per shard, shed the rest.

The server previously accepted unbounded concurrent sessions — every
connection got a snapshot, a BobSession, and a seat in the decode
coalescer, no matter how many were already in flight.  The
:class:`AdmissionController` puts two caps in front of that, both *per
shard* (each shard worker owns one journal and one slice of memory, so a
hot shard must not be able to starve the rest):

* ``max_sessions`` — concurrent reconciliation sessions on one shard.
  A session over the cap is *shed at HELLO time* with a RETRY frame
  carrying a server-suggested delay; the client backs off (with jitter,
  see :func:`retry_delay`) and tries again instead of queueing invisibly.
* ``max_decode_queue`` — decode submissions a shard may have waiting in
  the coalescer.  Hitting this cap applies backpressure (the session
  awaits a slot) rather than shedding, because mid-session RETRY would
  abandon rounds the client already paid for; the cap still feeds back
  into admission: a shard whose decode queue is saturated sheds *new*
  sessions until it drains.

Caps of 0 mean unlimited, which keeps the default single-tenant behavior
of PR 2 intact.
"""

from __future__ import annotations

import asyncio
import contextlib

# Re-exported for convenience: the client-side backoff helper lives with
# the RETRY frame in the service wire module (the service layer must not
# depend on the cluster layer).
from repro.service.wire import retry_delay

__all__ = ["AdmissionController", "DEFAULT_RETRY_AFTER_S", "retry_delay"]

#: Default server-suggested delay before a shed client should retry —
#: a couple of coalescer windows, enough for a session slot to turn over.
DEFAULT_RETRY_AFTER_S = 0.05


class AdmissionController:
    """Per-shard session and decode-queue caps for one server process.

    Lifecycle of a slot: :meth:`try_admit` at HELLO (``None`` =
    admitted, a float = shed with RETRY carrying that delay), paired
    with exactly one :meth:`release` carrying the :meth:`incarnation`
    token captured at admit time (so releases that straddle a
    :meth:`resize` cannot corrupt a re-created shard's counts).
    :meth:`decode_slot` is the mid-session backpressure context manager.
    Caps of 0 mean unlimited.  The controller is executor-agnostic: it
    counts sessions and decode submissions per shard id, whether the
    shard worker is an asyncio task or a subprocess (worker *downtime*
    shedding is separate — the server consults
    ``ClusterStore.shard_available`` before admitting).
    """

    def __init__(
        self,
        shards: int = 1,
        max_sessions: int = 0,
        max_decode_queue: int = 0,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.max_sessions = max_sessions
        self.max_decode_queue = max_decode_queue
        self.retry_after_s = retry_after_s
        self._active = [0] * shards
        self._peak = [0] * shards
        self._admitted = [0] * shards
        self._shed = [0] * shards
        self._decode_waiting = [0] * shards
        self._decode_peak = [0] * shards
        self._decode_slots = [
            asyncio.Semaphore(max_decode_queue) if max_decode_queue else None
            for _ in range(shards)
        ]
        # per-shard incarnation: bumped when a resize re-creates a shard
        # id after it was removed, so bookkeeping from the id's previous
        # life (a stale release/slot-exit) can be told apart from the
        # current one's and dropped instead of corrupting its counts
        self._incarnation = [0] * shards
        self._incarnation_counter = 0
        #: sessions shed because their shard id no longer exists (a
        #: multi-pass connection re-admitting across a shrink)
        self._shed_stale = 0

    # -- session admission -----------------------------------------------------
    def try_admit(self, shard: int) -> float | None:
        """Admit a session onto ``shard``, or return a retry-after hint.

        ``None`` means admitted (the caller owes a :meth:`release`); a
        float is the suggested client delay in seconds for the RETRY
        frame.  The hint is flat — spreading the retry wave is the
        client's job (:func:`repro.service.wire.retry_delay` jitters and
        grows it per attempt, so deeper overload backs clients off
        further without the server tracking them).

        A shard id that no longer exists (a multi-pass connection
        re-admitting with the id it captured before a shrinking
        :meth:`resize`) is shed with the same hint: the client backs
        off, reconnects, and re-routes under the new topology.
        """
        if not 0 <= shard < len(self._active):
            self._shed_stale += 1       # visible in stats like any shed
            return self.retry_after_s
        over_sessions = (
            self.max_sessions and self._active[shard] >= self.max_sessions
        )
        over_decode = (
            self.max_decode_queue
            and self._decode_waiting[shard] >= self.max_decode_queue
        )
        if over_sessions or over_decode:
            self._shed[shard] += 1
            return self.retry_after_s
        self._active[shard] += 1
        self._admitted[shard] += 1
        self._peak[shard] = max(self._peak[shard], self._active[shard])
        return None

    def incarnation(self, shard: int) -> int:
        """The shard's current incarnation token (capture at admit time,
        hand back to :meth:`release` so a release that straddled resizes
        can be matched to the admission it balances)."""
        if 0 <= shard < len(self._incarnation):
            return self._incarnation[shard]
        return -1

    def release(self, shard: int, incarnation: int | None = None) -> None:
        # a session admitted before a shrink may release a shard id that
        # no longer exists (its slot died with the shard), or one that a
        # later grow re-created (decrementing the *new* shard's count
        # would quietly raise its effective cap by one) — the incarnation
        # token tells those apart from a live shard's ordinary release.
        # The floor is a last-resort guard for callers without a token.
        if not 0 <= shard < len(self._active):
            return
        if incarnation is not None and incarnation != self._incarnation[shard]:
            return
        self._active[shard] = max(0, self._active[shard] - 1)

    def resize(self, shards: int) -> None:
        """Re-shape the per-shard books after a :meth:`ClusterStore.resize`.

        Surviving shards keep their live counts and history; new shards
        start cold.  Sessions admitted under the old topology simply
        finish: a release (or decode slot) against a removed shard id is
        ignored rather than indexed out of bounds.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")

        def _fit(values: list, fill) -> list:
            return values[:shards] + [fill] * (shards - len(values))

        self._active = _fit(self._active, 0)
        self._peak = _fit(self._peak, 0)
        self._admitted = _fit(self._admitted, 0)
        self._shed = _fit(self._shed, 0)
        self._decode_waiting = _fit(self._decode_waiting, 0)
        self._decode_peak = _fit(self._decode_peak, 0)
        self._decode_slots = self._decode_slots[:shards] + [
            asyncio.Semaphore(self.max_decode_queue)
            if self.max_decode_queue
            else None
            for _ in range(shards - len(self._decode_slots))
        ]
        # shards beyond the old count are (re-)born: new incarnation, so
        # tokens captured during a removed predecessor's life dangle
        self._incarnation_counter += 1
        self._incarnation = self._incarnation[:shards] + [
            self._incarnation_counter
            for _ in range(shards - len(self._incarnation))
        ]
        self.shards = shards

    # -- decode backpressure ---------------------------------------------------
    @contextlib.asynccontextmanager
    async def decode_slot(self, shard: int):
        """Hold one of the shard's decode-queue slots (waits when full)."""
        slot = (
            self._decode_slots[shard]
            if 0 <= shard < len(self._decode_slots)
            else None
        )
        if slot is None:
            yield
            return
        incarnation = self._incarnation[shard]
        self._decode_waiting[shard] += 1
        self._decode_peak[shard] = max(
            self._decode_peak[shard], self._decode_waiting[shard]
        )
        try:
            async with slot:
                yield
        finally:
            # the shard may have been resized away (or away and back)
            # while the slot was held; only this incarnation's counter
            # may be decremented — a surviving shard keeps its counts
            # across a resize, a re-created one must not inherit ours
            if (
                0 <= shard < len(self._decode_waiting)
                and self._incarnation[shard] == incarnation
            ):
                self._decode_waiting[shard] = max(
                    0, self._decode_waiting[shard] - 1
                )

    # -- introspection ---------------------------------------------------------
    @property
    def total_shed(self) -> int:
        return sum(self._shed) + self._shed_stale

    def stats(self) -> dict:
        return {
            "max_sessions": self.max_sessions,
            "max_decode_queue": self.max_decode_queue,
            "retry_after_s": self.retry_after_s,
            "shed_total": self.total_shed,
            "shed_stale_shard": self._shed_stale,
            "per_shard": [
                {
                    "shard": shard,
                    "active": self._active[shard],
                    "peak": self._peak[shard],
                    "admitted": self._admitted[shard],
                    "shed": self._shed[shard],
                    "decode_waiting": self._decode_waiting[shard],
                    "decode_peak": self._decode_peak[shard],
                }
                for shard in range(self.shards)
            ],
        }
